//! Lockstep equivalence test: the incremental component-based fluid solver
//! against an independent naive reference model.
//!
//! The reference model re-runs the *global* progressive-filling pass over the
//! whole constraint graph on every query — no components, no dirtiness, no
//! heap — with the same floating-point conventions as the production model
//! (ascending resource/slot iteration, remaining-work materialisation only on
//! bitwise rate change, projection-based completion). Random admit / retire /
//! re-rate / weighted-admit / advance sequences must then produce
//! **bit-identical** rates, remaining work, next-completion times and
//! completion ordering at every step; any divergence means the incremental
//! solver's dirty-component bookkeeping skipped (or spuriously re-ordered) a
//! recomputation the global pass would have performed.

use cgsim_des::fluid::{ActivityId, FluidModel, ResourceId, EPSILON, TIME_RESOLUTION_S};
use cgsim_des::SimTime;
use proptest::prelude::*;

/// One activity of the reference model, stored at the slot index of the
/// production model's [`ActivityId`] so orderings coincide.
#[derive(Clone, Debug)]
struct RefActivity {
    id: ActivityId,
    route: Vec<usize>,
    weight: f64,
    /// Remaining work at `synced_at` (deferred, like the production model).
    remaining: f64,
    synced_at: f64,
    rate: f64,
}

/// Naive global-recompute reference model.
#[derive(Default)]
struct ReferenceModel {
    capacities: Vec<f64>,
    /// Slot-indexed live activities (mirrors the production slab layout).
    slots: Vec<Option<RefActivity>>,
    clock: f64,
}

impl ReferenceModel {
    fn add_resource(&mut self, capacity: f64) -> usize {
        self.capacities.push(capacity);
        self.capacities.len() - 1
    }

    fn add(&mut self, id: ActivityId, amount: f64, route: Vec<usize>, weight: f64) {
        let slot = id.slot() as usize;
        if slot >= self.slots.len() {
            self.slots.resize_with(slot + 1, || None);
        }
        assert!(self.slots[slot].is_none(), "slot collision");
        self.slots[slot] = Some(RefActivity {
            id,
            route,
            weight,
            remaining: amount,
            synced_at: self.clock,
            rate: 0.0,
        });
    }

    fn remove(&mut self, id: ActivityId) -> Option<f64> {
        let slot = id.slot() as usize;
        let act = self.slots.get_mut(slot)?.take()?;
        Some(act.remaining - act.rate * (self.clock - act.synced_at))
    }

    /// Full global progressive filling with deferred-remaining semantics.
    fn solve(&mut self) {
        let n_res = self.capacities.len();
        let mut residual = self.capacities.clone();
        let mut frozen = vec![false; self.slots.len()];
        let old_rates: Vec<f64> = self
            .slots
            .iter()
            .map(|s| s.as_ref().map_or(0.0, |a| a.rate))
            .collect();
        let mut unfrozen = 0usize;
        for act in self.slots.iter_mut().flatten() {
            act.rate = 0.0;
            unfrozen += 1;
        }
        while unfrozen > 0 {
            // Weight of unfrozen activities crossing each resource, with user
            // lists walked in ascending slot order.
            let mut weight_sum = vec![0.0f64; n_res];
            for (r, sum) in weight_sum.iter_mut().enumerate() {
                for (slot, act) in self.slots.iter().enumerate() {
                    let Some(act) = act else { continue };
                    if frozen[slot] {
                        continue;
                    }
                    for &route_r in &act.route {
                        if route_r == r {
                            *sum += act.weight;
                        }
                    }
                }
            }
            let mut bottleneck: Option<(usize, f64)> = None;
            for (r, &w) in weight_sum.iter().enumerate() {
                if w > EPSILON {
                    let share = residual[r] / w;
                    match bottleneck {
                        Some((_, best)) if share >= best => {}
                        _ => bottleneck = Some((r, share)),
                    }
                }
            }
            let Some((bottleneck_idx, fair)) = bottleneck else {
                break;
            };
            let mut froze_any = false;
            #[allow(clippy::needless_range_loop)] // lockstep with slab index order
            for slot in 0..self.slots.len() {
                let Some(act) = &self.slots[slot] else {
                    continue;
                };
                if frozen[slot] || !act.route.contains(&bottleneck_idx) {
                    continue;
                }
                let rate = fair * act.weight;
                for &r in &self.slots[slot].as_ref().unwrap().route {
                    residual[r] = (residual[r] - rate).max(0.0);
                }
                self.slots[slot].as_mut().unwrap().rate = rate;
                frozen[slot] = true;
                unfrozen -= 1;
                froze_any = true;
            }
            if !froze_any {
                break;
            }
        }
        // Materialise remaining work only where the rate changed bitwise —
        // the production model's reproducibility convention.
        let clock = self.clock;
        for (slot, act) in self.slots.iter_mut().enumerate() {
            let Some(act) = act else { continue };
            if act.rate.to_bits() != old_rates[slot].to_bits() {
                act.remaining -= old_rates[slot] * (clock - act.synced_at);
                act.synced_at = clock;
            }
        }
    }

    fn projection(act: &RefActivity) -> f64 {
        if act.remaining <= EPSILON {
            act.synced_at
        } else if act.rate > EPSILON {
            if act.remaining <= act.rate * TIME_RESOLUTION_S {
                act.synced_at
            } else {
                act.synced_at + act.remaining / act.rate
            }
        } else {
            f64::INFINITY
        }
    }

    fn time_to_next_completion(&mut self) -> Option<SimTime> {
        self.solve();
        let best = self
            .slots
            .iter()
            .flatten()
            .map(Self::projection)
            .filter(|p| p.is_finite())
            .fold(None, |best: Option<f64>, p| match best {
                Some(b) if b <= p => Some(b),
                _ => Some(p),
            })?;
        Some(SimTime::from_secs((best - self.clock).max(0.0)))
    }

    fn advance(&mut self, dt: SimTime) -> Vec<ActivityId> {
        self.solve();
        self.clock += dt.as_secs();
        let deadline = self.clock + TIME_RESOLUTION_S;
        let mut finished = Vec::new();
        for slot in 0..self.slots.len() {
            let Some(act) = &self.slots[slot] else {
                continue;
            };
            if Self::projection(act) <= deadline {
                finished.push(act.id);
                self.slots[slot] = None;
            }
        }
        finished
    }

    fn rates(&mut self) -> Vec<(ActivityId, f64)> {
        self.solve();
        self.slots
            .iter()
            .flatten()
            .map(|act| (act.id, act.rate))
            .collect()
    }

    fn remaining(&self, id: ActivityId) -> Option<f64> {
        let act = self.slots.get(id.slot() as usize)?.as_ref()?;
        Some(act.remaining - act.rate * (self.clock - act.synced_at))
    }
}

proptest! {
    /// Random admit/retire/re-rate/advance sequences — including
    /// link-degradation-style `set_capacity` storms that repeatedly re-rate
    /// the same resource (degrade, deepen, restore) between admits and
    /// retires, single-resource topologies that qualify for the
    /// single-bottleneck fast path, and retire+admit churn pairs that keep
    /// the hub's fair share bitwise-stable (the fast path's no-per-slot-work
    /// branch): the incremental solver, a twin with the fast path disabled,
    /// and the naive reference agree bit-for-bit on every observable at
    /// every step. The twin pins fast-path/slow-path *migration*: every op
    /// that moves a component between modes in `real` is replayed on a model
    /// that never leaves the slow path.
    #[test]
    fn incremental_solver_matches_naive_reference(
        caps in prop::collection::vec(1.0f64..1000.0, 2..6),
        ops in prop::collection::vec(
            (0usize..10, 0usize..64, 0usize..64, 1.0f64..1e6, 0.05f64..0.95),
            1..80,
        ),
    ) {
        let mut real = FluidModel::new();
        let mut twin = FluidModel::new();
        twin.disable_fast_path();
        let mut reference = ReferenceModel::default();
        let resources: Vec<ResourceId> = caps.iter().map(|&c| real.add_resource(c)).collect();
        for &c in &caps {
            twin.add_resource(c);
            reference.add_resource(c);
        }
        let mut live: Vec<ActivityId> = Vec::new();
        // Route and weight of every live admit, for stable-φ churn pairs.
        let mut admits: Vec<(ActivityId, Vec<usize>, f64)> = Vec::new();

        for &(kind, a, b, amount, frac) in &ops {
            match kind {
                // Weighted admit over a 1- or 2-resource route.
                0 | 1 => {
                    let r1 = a % resources.len();
                    let r2 = b % resources.len();
                    let (route_ids, route_idx) = if r1 == r2 {
                        (vec![resources[r1]], vec![r1])
                    } else {
                        (vec![resources[r1], resources[r2]], vec![r1, r2])
                    };
                    let weight = if kind == 0 { 1.0 } else { 1.0 + (b % 4) as f64 };
                    let id = real.add_weighted_activity(amount, &route_ids, weight);
                    let twin_id = twin.add_weighted_activity(amount, &route_ids, weight);
                    prop_assert_eq!(id, twin_id);
                    reference.add(id, amount, route_idx.clone(), weight);
                    live.push(id);
                    admits.push((id, route_idx, weight));
                }
                // Retire.
                2 => {
                    if !live.is_empty() {
                        let id = live.remove(a % live.len());
                        admits.retain(|(aid, _, _)| *aid != id);
                        let got = real.remove_activity(id);
                        let got_twin = twin.remove_activity(id);
                        let want = reference.remove(id);
                        prop_assert_eq!(got.map(f64::to_bits), want.map(f64::to_bits));
                        prop_assert_eq!(got_twin.map(f64::to_bits), want.map(f64::to_bits));
                    }
                }
                // Re-rate a resource.
                3 => {
                    let r = a % resources.len();
                    let cap = 1.0 + amount % 999.0;
                    real.set_capacity(resources[r], cap);
                    twin.set_capacity(resources[r], cap);
                    if reference.capacities[r].to_bits() != cap.to_bits() {
                        reference.capacities[r] = cap;
                    }
                }
                // Advance exactly to the next completion.
                4 => {
                    let real_next = real.time_to_next_completion();
                    let ref_next = reference.time_to_next_completion();
                    prop_assert_eq!(real_next, ref_next);
                    prop_assert_eq!(twin.time_to_next_completion(), ref_next);
                    if let Some(dt) = real_next {
                        let done_real = real.advance(dt);
                        let done_twin = twin.advance(dt);
                        let done_ref = reference.advance(dt);
                        prop_assert_eq!(&done_real, &done_ref);
                        prop_assert_eq!(&done_twin, &done_ref);
                        live.retain(|id| !done_real.contains(id));
                        admits.retain(|(aid, _, _)| !done_real.contains(aid));
                    }
                }
                // Partial advance (a fraction of the next completion time).
                5 => {
                    let real_next = real.time_to_next_completion();
                    let ref_next = reference.time_to_next_completion();
                    prop_assert_eq!(real_next, ref_next);
                    prop_assert_eq!(twin.time_to_next_completion(), ref_next);
                    if let Some(dt) = real_next {
                        let partial = SimTime::from_secs(dt.as_secs() * frac);
                        let done_real = real.advance(partial);
                        let done_twin = twin.advance(partial);
                        let done_ref = reference.advance(partial);
                        prop_assert_eq!(&done_real, &done_ref);
                        prop_assert_eq!(&done_twin, &done_ref);
                        live.retain(|id| !done_real.contains(id));
                        admits.retain(|(aid, _, _)| !done_real.contains(aid));
                    }
                }
                // Degradation-style re-rate: scale one resource to a
                // fraction of its *nominal* capacity (how the simulation
                // core applies `GridAvailability::link_factor`).
                6 => {
                    let r = a % resources.len();
                    let cap = caps[r] * frac;
                    real.set_capacity(resources[r], cap);
                    twin.set_capacity(resources[r], cap);
                    reference.capacities[r] = cap;
                }
                // Re-rate storm on a single resource: degrade, deepen, then
                // restore to nominal back-to-back — the overlapping
                // begin/begin/end sequences fault replay produces. Each step
                // must keep the dirty-component bookkeeping coherent even
                // though only the final value survives.
                7 => {
                    let r = b % resources.len();
                    for step in [frac, frac * 0.5, 1.0] {
                        let cap = caps[r] * step;
                        real.set_capacity(resources[r], cap);
                        twin.set_capacity(resources[r], cap);
                        reference.capacities[r] = cap;
                        // Interleave queries so every intermediate value is
                        // actually observed, not just the last one.
                        let want = reference.time_to_next_completion();
                        prop_assert_eq!(real.time_to_next_completion(), want);
                        prop_assert_eq!(twin.time_to_next_completion(), want);
                    }
                }
                // Single-resource admit: the trivially single-bottleneck
                // topology the fast path targets.
                8 => {
                    let r = a % resources.len();
                    let id = real.add_activity(amount, &[resources[r]]);
                    let twin_id = twin.add_activity(amount, &[resources[r]]);
                    prop_assert_eq!(id, twin_id);
                    reference.add(id, amount, vec![r], 1.0);
                    live.push(id);
                    admits.push((id, vec![r], 1.0));
                }
                // Stable-φ churn pair: retire a live activity and admit a
                // replacement with the *same route and weight* before the
                // next query. The hub's weight sum — and therefore its fair
                // share — is bitwise-unchanged across the pair, driving the
                // fast path's only-rate-the-fresh-slot branch (the whole
                // point of the total-work accounting). Mixed with the other
                // kinds, this also produces fast/slow mode migration within
                // one sequence.
                _ => {
                    if !admits.is_empty() {
                        let (id, route_idx, weight) = admits.remove(a % admits.len());
                        live.retain(|l| *l != id);
                        let got = real.remove_activity(id);
                        let got_twin = twin.remove_activity(id);
                        let want = reference.remove(id);
                        prop_assert_eq!(got.map(f64::to_bits), want.map(f64::to_bits));
                        prop_assert_eq!(got_twin.map(f64::to_bits), want.map(f64::to_bits));
                        let route_ids: Vec<ResourceId> =
                            route_idx.iter().map(|&r| resources[r]).collect();
                        let new_id = real.add_weighted_activity(amount, &route_ids, weight);
                        let new_twin = twin.add_weighted_activity(amount, &route_ids, weight);
                        prop_assert_eq!(new_id, new_twin);
                        reference.add(new_id, amount, route_idx.clone(), weight);
                        live.push(new_id);
                        admits.push((new_id, route_idx, weight));
                    }
                }
            }

            // Invariants after every operation: rates, remaining work and
            // next-completion agree bit-for-bit across all three models.
            let real_rates: Vec<(ActivityId, u64)> = real
                .rates()
                .into_iter()
                .map(|(id, r)| (id, r.to_bits()))
                .collect();
            let twin_rates: Vec<(ActivityId, u64)> = twin
                .rates()
                .into_iter()
                .map(|(id, r)| (id, r.to_bits()))
                .collect();
            let ref_rates: Vec<(ActivityId, u64)> = reference
                .rates()
                .into_iter()
                .map(|(id, r)| (id, r.to_bits()))
                .collect();
            prop_assert_eq!(&real_rates, &ref_rates);
            prop_assert_eq!(&twin_rates, &ref_rates);
            for &id in &live {
                let want = reference.remaining(id).map(f64::to_bits);
                prop_assert_eq!(real.remaining(id).map(f64::to_bits), want);
                prop_assert_eq!(twin.remaining(id).map(f64::to_bits), want);
            }
            let want_next = reference.time_to_next_completion();
            prop_assert_eq!(real.time_to_next_completion(), want_next);
            prop_assert_eq!(twin.time_to_next_completion(), want_next);
            prop_assert_eq!(real.activity_count(), live.len());
            prop_assert_eq!(twin.activity_count(), live.len());
        }
    }
}

/// Forced-full-recompute twin probe at scale: 300 dense-churn steps over a
/// single-bottleneck topology at N=5000 (32 uplinks feeding one backbone,
/// equal-weight churn — the shape the fast path's stable-φ branch serves),
/// plus a multi-constrained island sharing the model so both solve modes run
/// side by side. After every step the production model must agree on **every
/// rate** with a twin that (a) has the fast path disabled and (b) is forced
/// to re-solve every component from scratch before each query.
#[test]
fn forced_full_recompute_twin_agrees_at_n5000() {
    let n: usize = 5000;
    let uplink_count = 32;
    let mut real = FluidModel::new();
    let mut twin = FluidModel::new();
    twin.disable_fast_path();

    let backbone = real.add_resource(1e9);
    let uplinks: Vec<ResourceId> = (0..uplink_count)
        .map(|i| real.add_resource(1e12 + i as f64 * 1e9))
        .collect();
    // Multi-constrained island: two cross-coupled links that never qualify
    // for the fast path (no hub is crossed by all of its activities).
    let isl_a = real.add_resource(10.0);
    let isl_b = real.add_resource(100.0);
    twin.add_resource(1e9);
    for i in 0..uplink_count {
        twin.add_resource(1e12 + i as f64 * 1e9);
    }
    twin.add_resource(10.0);
    twin.add_resource(100.0);

    let route = |i: usize| [uplinks[i % uplink_count], backbone];
    let mut live: Vec<ActivityId> = (0..n)
        .map(|i| {
            let id = real.add_activity(1e12 + i as f64, &route(i));
            assert_eq!(id, twin.add_activity(1e12 + i as f64, &route(i)));
            id
        })
        .collect();
    for (amount, r) in [
        (1e9, vec![isl_a]),
        (1e9, vec![isl_a, isl_b]),
        (1e9, vec![isl_b]),
    ] {
        let id = real.add_activity(amount, &r);
        assert_eq!(id, twin.add_activity(amount, &r));
    }

    let mut real_rates = Vec::new();
    let mut twin_rates = Vec::new();
    let mut step_base = 0u64;
    for step in 0..300 {
        let slot = step % live.len();
        let victim = live[slot];
        assert_eq!(
            real.remove_activity(victim).map(f64::to_bits),
            twin.remove_activity(victim).map(f64::to_bits),
            "step {step}: removed remaining diverged"
        );
        step_base += 1;
        let amount = 1e12 + step_base as f64;
        let id = real.add_activity(amount, &route(step));
        assert_eq!(id, twin.add_activity(amount, &route(step)));
        live[slot] = id;

        // Forced full recompute on the twin: every component re-solved from
        // scratch by the slow path before the query.
        twin.mark_all_dirty();
        real.rates_into(&mut real_rates);
        twin.rates_into(&mut twin_rates);
        assert_eq!(real_rates.len(), twin_rates.len());
        for (got, want) in real_rates.iter().zip(&twin_rates) {
            assert_eq!(got.0, want.0, "step {step}: id order diverged");
            assert_eq!(
                got.1.to_bits(),
                want.1.to_bits(),
                "step {step}: rate of {} diverged: {} vs {}",
                got.0,
                got.1,
                want.1
            );
        }
        assert_eq!(
            real.time_to_next_completion(),
            twin.time_to_next_completion(),
            "step {step}: next completion diverged"
        );
    }
    let (fast, slow) = real.solver_stats();
    assert!(fast > 0, "the dense component must use the fast path");
    assert!(slow > 0, "the island must use the slow path");
}
