//! Property-based tests for the optimisers and linear algebra.

use cgsim_calibrate::linalg::{cholesky, cholesky_solve, symmetric_eigen, Matrix};
use cgsim_calibrate::OptimizerKind;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every optimiser respects the evaluation budget, only queries points
    /// inside the bounds, and reports a best value it actually observed.
    #[test]
    fn optimizers_respect_budget_and_bounds(
        seed in any::<u64>(),
        lo in -5.0f64..0.0,
        width in 0.5f64..10.0,
        target_frac in 0.0f64..1.0,
        budget in 5usize..60,
        kind_idx in 0usize..4,
    ) {
        let hi = lo + width;
        let target = lo + target_frac * width;
        let kind = OptimizerKind::all()[kind_idx];
        let mut optimizer = kind.build(seed);
        let mut evaluations = 0usize;
        let mut observed = Vec::new();
        let result = optimizer.optimize(
            &mut |x: &[f64]| {
                evaluations += 1;
                assert!(x.len() == 1);
                assert!(x[0] >= lo - 1e-9 && x[0] <= hi + 1e-9, "query out of bounds");
                let v = (x[0] - target).powi(2);
                observed.push(v);
                v
            },
            &[(lo, hi)],
            budget,
        );
        prop_assert!(evaluations <= budget);
        prop_assert_eq!(result.evaluations, evaluations);
        prop_assert!(result.best_x[0] >= lo - 1e-9 && result.best_x[0] <= hi + 1e-9);
        // The reported best equals the minimum observed value.
        let min_observed = observed.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!((result.best_value - min_observed).abs() < 1e-12);
        // The best-so-far history is non-increasing and ends at the best value.
        for pair in result.history.windows(2) {
            prop_assert!(pair[1] <= pair[0] + 1e-12);
        }
        prop_assert!((result.history.last().copied().unwrap() - min_observed).abs() < 1e-12);
    }

    /// Cholesky solve inverts SPD systems built as A = M Mᵀ + εI.
    #[test]
    fn cholesky_solves_random_spd_systems(
        entries in prop::collection::vec(-2.0f64..2.0, 9),
        rhs in prop::collection::vec(-5.0f64..5.0, 3),
    ) {
        let m = Matrix::from_rows(&[
            entries[0..3].to_vec(),
            entries[3..6].to_vec(),
            entries[6..9].to_vec(),
        ]);
        // A = M M^T + I (guaranteed SPD).
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                let mut sum = 0.0;
                for k in 0..3 {
                    sum += m[(i, k)] * m[(j, k)];
                }
                a[(i, j)] = sum + if i == j { 1.0 } else { 0.0 };
            }
        }
        let l = cholesky(&a).expect("A is SPD");
        let x = cholesky_solve(&l, &rhs);
        let back = a.mat_vec(&x);
        for (bi, ri) in back.iter().zip(&rhs) {
            prop_assert!((bi - ri).abs() < 1e-6);
        }
    }

    /// Jacobi eigendecomposition reconstructs random symmetric matrices and
    /// produces orthonormal eigenvectors.
    #[test]
    fn eigen_reconstructs_random_symmetric(entries in prop::collection::vec(-3.0f64..3.0, 6)) {
        // Symmetric 3x3 from 6 free entries.
        let a = Matrix::from_rows(&[
            vec![entries[0], entries[1], entries[2]],
            vec![entries[1], entries[3], entries[4]],
            vec![entries[2], entries[4], entries[5]],
        ]);
        let (vals, vecs) = symmetric_eigen(&a);
        for i in 0..3 {
            for j in 0..3 {
                let mut sum = 0.0;
                for k in 0..3 {
                    sum += vecs[(i, k)] * vals[k] * vecs[(j, k)];
                }
                prop_assert!((sum - a[(i, j)]).abs() < 1e-5, "reconstruction mismatch");
                // Orthonormality of eigenvector columns.
                let mut dot = 0.0;
                for k in 0..3 {
                    dot += vecs[(k, i)] * vecs[(k, j)];
                }
                let expected = if i == j { 1.0 } else { 0.0 };
                prop_assert!((dot - expected).abs() < 1e-5, "columns not orthonormal");
            }
        }
    }
}
