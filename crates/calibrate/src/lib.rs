//! # cgsim-calibrate — the calibration framework
//!
//! Paper §4.2 calibrates CGSim against historical PanDA job records: the
//! dominant error source is the per-site CPU core processing speed, so each
//! site's speed is tuned to minimise the discrepancy between simulated and
//! historical job execution time (`Δ_exe_time = Sim_exe_time − His_exe_time`),
//! and four optimisation methods are compared — brute-force (grid) search,
//! random sampling, Bayesian optimisation and CMA-ES. Random search wins on
//! this landscape; the calibrated simulator improves the geometric mean of
//! the per-site relative MAE from 76 % to 17 % over 50 sites (Fig. 3).
//!
//! This crate reproduces that pipeline end to end:
//!
//! * [`optimizer`] — the optimiser abstraction plus the four methods of the
//!   paper, implemented from scratch ([`GridSearch`], [`RandomSearch`],
//!   [`BayesianOptimizer`] with a GP/expected-improvement loop, and
//!   [`CmaEs`]),
//! * [`linalg`] — the small dense linear algebra (Cholesky, Jacobi
//!   eigendecomposition) those optimisers need,
//! * [`objective`] — the walltime-error objective: run the simulator with a
//!   candidate per-site speed multiplier on that site's historical jobs and
//!   report the relative MAE,
//! * [`calibrator`] — per-site calibration orchestration (optionally in
//!   parallel across sites), producing the before/after error table of
//!   Fig. 3,
//! * [`sensitivity`] — the parameter sensitivity analysis that identifies
//!   CPU speed as the dominant parameter.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calibrator;
pub mod linalg;
pub mod objective;
pub mod optimizer;
pub mod sensitivity;

pub use calibrator::{CalibrationReport, Calibrator, SiteCalibration};
pub use objective::SiteWalltimeObjective;
pub use optimizer::{
    BayesianOptimizer, CmaEs, GridSearch, OptResult, Optimizer, OptimizerKind, RandomSearch,
};
pub use sensitivity::{SensitivityReport, SensitivityStudy};
