//! The calibration objective: per-site relative walltime error.
//!
//! "We perform site specific calibration by feeding historical jobs into the
//! simulator and measuring the discrepancy between ground truth execution
//! time and simulated execution time" (§4.2). The objective below does
//! exactly that for one site: run the simulator on the site's historical
//! jobs with the historical-PanDA dispatch policy and a candidate speed
//! multiplier, then report the relative mean absolute error of the simulated
//! walltime against the trace's ground truth.

use cgsim_core::{ExecutionConfig, Simulation};
use cgsim_platform::{Platform, PlatformSpec};
use cgsim_workload::Trace;

/// Objective function for calibrating one site's CPU speed multiplier.
pub struct SiteWalltimeObjective {
    platform_spec: PlatformSpec,
    site_name: String,
    site_trace: Trace,
    execution: ExecutionConfig,
}

impl SiteWalltimeObjective {
    /// Builds the objective for `site_name`, filtering the calibration trace
    /// down to the jobs historically executed at that site.
    pub fn new(platform_spec: &PlatformSpec, trace: &Trace, site_name: &str) -> Self {
        let jobs = trace.jobs_for_site(site_name).cloned().collect::<Vec<_>>();
        let mut execution = ExecutionConfig::with_policy("historical-panda");
        // Calibration compares execution time only; monitoring rows are not
        // needed and output transfers do not affect site walltime accounting
        // materially, but we keep them on for fidelity with normal runs.
        execution.monitoring = cgsim_monitor_config_disabled();
        SiteWalltimeObjective {
            platform_spec: platform_spec.clone(),
            site_name: site_name.to_string(),
            site_trace: Trace {
                jobs,
                hidden_site_multipliers: trace.hidden_site_multipliers.clone(),
            },
            execution,
        }
    }

    /// Number of historical jobs available for this site.
    pub fn job_count(&self) -> usize {
        self.site_trace.len()
    }

    /// Name of the calibrated site.
    pub fn site_name(&self) -> &str {
        &self.site_name
    }

    /// Evaluates the relative walltime MAE for a candidate speed multiplier.
    /// Returns 0 when the site has no historical jobs.
    pub fn evaluate(&self, multiplier: f64) -> f64 {
        if self.site_trace.is_empty() {
            return 0.0;
        }
        let mut platform = Platform::build(&self.platform_spec)
            .expect("calibration platform spec was validated by the caller");
        if let Some(site) = platform.site_by_name(&self.site_name) {
            platform.set_speed_multiplier(site, multiplier.max(1e-6));
        }
        let results = Simulation::builder()
            .platform(platform)
            .trace(self.site_trace.clone())
            .policy_name("historical-panda")
            .execution(self.execution.clone())
            .run()
            .expect("calibration simulation is well-formed");
        results
            .walltime_error_by_site()
            .get(&self.site_name)
            .map(|e| e.overall)
            .unwrap_or(0.0)
    }
}

fn cgsim_monitor_config_disabled() -> cgsim_monitor::MonitoringConfig {
    cgsim_monitor::MonitoringConfig::disabled()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_platform::presets::example_platform;
    use cgsim_workload::{TraceConfig, TraceGenerator};

    fn setup() -> (PlatformSpec, Trace) {
        let spec = example_platform();
        let mut cfg = TraceConfig::with_jobs(200, 33);
        // Keep staging cheap so walltime is compute-dominated (as in ATLAS).
        cfg.mean_file_bytes = 1e8;
        let trace = TraceGenerator::new(cfg).generate(&spec);
        (spec, trace)
    }

    #[test]
    fn objective_reports_site_and_job_count() {
        let (spec, trace) = setup();
        let obj = SiteWalltimeObjective::new(&spec, &trace, "BNL");
        assert_eq!(obj.site_name(), "BNL");
        assert_eq!(obj.job_count(), trace.jobs_for_site("BNL").count());
        assert!(obj.job_count() > 0);
    }

    #[test]
    fn hidden_multiplier_minimises_the_objective() {
        let (spec, trace) = setup();
        let obj = SiteWalltimeObjective::new(&spec, &trace, "CERN");
        let hidden = trace.hidden_site_multipliers["CERN"];
        let at_hidden = obj.evaluate(hidden);
        let at_nominal = obj.evaluate(1.0);
        let far_off = obj.evaluate(hidden * 3.0);
        assert!(
            at_hidden < at_nominal || (hidden - 1.0).abs() < 0.1,
            "error at hidden multiplier {at_hidden} should beat nominal {at_nominal}"
        );
        assert!(at_hidden < far_off);
        // At the hidden multiplier only the generator noise remains.
        assert!(at_hidden < 0.35, "residual error too large: {at_hidden}");
    }

    #[test]
    fn unknown_site_yields_zero_objective() {
        let (spec, trace) = setup();
        let obj = SiteWalltimeObjective::new(&spec, &trace, "NOT-A-SITE");
        assert_eq!(obj.job_count(), 0);
        assert_eq!(obj.evaluate(1.0), 0.0);
    }
}
