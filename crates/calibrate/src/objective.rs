//! The calibration objective: per-site relative walltime error.
//!
//! "We perform site specific calibration by feeding historical jobs into the
//! simulator and measuring the discrepancy between ground truth execution
//! time and simulated execution time" (§4.2). The objective below does
//! exactly that for one site: run the simulator on the site's historical
//! jobs with the historical-PanDA dispatch policy and a candidate speed
//! multiplier, then report the relative mean absolute error of the simulated
//! walltime against the trace's ground truth.
//!
//! Each objective evaluates through its own [`ScenarioEngine`]: the filtered
//! site trace is `Arc`-shared across every candidate multiplier (only the
//! small platform spec is cloned per evaluation), and because search
//! procedures revisit candidates — golden-section endpoints, bracket
//! midpoints — the engine's deterministic response cache turns those
//! re-evaluations into lookups instead of reruns.

use std::sync::Arc;

use cgsim_core::scenario::{ScenarioBase, ScenarioEngine, ScenarioSpec};
use cgsim_core::ExecutionConfig;
use cgsim_platform::PlatformSpec;
use cgsim_workload::Trace;

/// Objective function for calibrating one site's CPU speed multiplier.
pub struct SiteWalltimeObjective {
    /// Shared platform spec + filtered site trace (content-hashed once).
    base: Arc<cgsim_core::scenario::ScenarioBase>,
    site_name: String,
    execution: ExecutionConfig,
    engine: ScenarioEngine,
}

impl SiteWalltimeObjective {
    /// Builds the objective for `site_name`, filtering the calibration trace
    /// down to the jobs historically executed at that site.
    pub fn new(platform_spec: &PlatformSpec, trace: &Trace, site_name: &str) -> Self {
        let jobs = trace.jobs_for_site(site_name).cloned().collect::<Vec<_>>();
        let mut execution = ExecutionConfig::with_policy("historical-panda");
        // Calibration compares execution time only; monitoring rows are not
        // needed and output transfers do not affect site walltime accounting
        // materially, but we keep them on for fidelity with normal runs.
        execution.monitoring = cgsim_monitor_config_disabled();
        let site_trace = Trace {
            jobs,
            hidden_site_multipliers: trace.hidden_site_multipliers.clone(),
        };
        SiteWalltimeObjective {
            base: ScenarioBase::shared(platform_spec.clone(), site_trace),
            site_name: site_name.to_string(),
            execution,
            // Serial: the calibrator already fans out across sites, and each
            // evaluation is a single simulation anyway.
            engine: ScenarioEngine::new().parallel(false),
        }
    }

    /// Number of historical jobs available for this site.
    pub fn job_count(&self) -> usize {
        self.base.trace().len()
    }

    /// Name of the calibrated site.
    pub fn site_name(&self) -> &str {
        &self.site_name
    }

    /// Evaluates the relative walltime MAE for a candidate speed multiplier.
    /// Returns 0 when the site has no historical jobs.
    pub fn evaluate(&self, multiplier: f64) -> f64 {
        if self.base.trace().is_empty() {
            return 0.0;
        }
        // The candidate multiplier is the only platform delta: clone the
        // (small) spec, set it, and rebase — `with_platform` re-hashes the
        // spec but reuses the shared trace and its hash.
        let mut platform_spec = (**self.base.platform()).clone();
        if let Some(site) = platform_spec
            .sites
            .iter_mut()
            .find(|s| s.name == self.site_name)
        {
            site.speed_multiplier = multiplier.max(1e-6);
        }
        let base = Arc::new(self.base.with_platform(platform_spec));
        let scenario = ScenarioSpec::new(base, self.execution.clone());
        let outcome = self
            .engine
            .evaluate(&scenario)
            .expect("calibration simulation is well-formed");
        outcome
            .results
            .walltime_error_by_site()
            .get(&self.site_name)
            .map(|e| e.overall)
            .unwrap_or(0.0)
    }

    /// How many simulations this objective has actually run (re-evaluated
    /// multipliers are answered from the response cache).
    pub fn simulations_run(&self) -> u64 {
        self.engine.simulations_run()
    }
}

fn cgsim_monitor_config_disabled() -> cgsim_monitor::MonitoringConfig {
    cgsim_monitor::MonitoringConfig::disabled()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_platform::presets::example_platform;
    use cgsim_workload::{TraceConfig, TraceGenerator};

    fn setup() -> (PlatformSpec, Trace) {
        let spec = example_platform();
        let mut cfg = TraceConfig::with_jobs(200, 33);
        // Keep staging cheap so walltime is compute-dominated (as in ATLAS).
        cfg.mean_file_bytes = 1e8;
        let trace = TraceGenerator::new(cfg).generate(&spec);
        (spec, trace)
    }

    #[test]
    fn objective_reports_site_and_job_count() {
        let (spec, trace) = setup();
        let obj = SiteWalltimeObjective::new(&spec, &trace, "BNL");
        assert_eq!(obj.site_name(), "BNL");
        assert_eq!(obj.job_count(), trace.jobs_for_site("BNL").count());
        assert!(obj.job_count() > 0);
    }

    #[test]
    fn hidden_multiplier_minimises_the_objective() {
        let (spec, trace) = setup();
        let obj = SiteWalltimeObjective::new(&spec, &trace, "CERN");
        let hidden = trace.hidden_site_multipliers["CERN"];
        let at_hidden = obj.evaluate(hidden);
        let at_nominal = obj.evaluate(1.0);
        let far_off = obj.evaluate(hidden * 3.0);
        assert!(
            at_hidden < at_nominal || (hidden - 1.0).abs() < 0.1,
            "error at hidden multiplier {at_hidden} should beat nominal {at_nominal}"
        );
        assert!(at_hidden < far_off);
        // At the hidden multiplier only the generator noise remains.
        assert!(at_hidden < 0.35, "residual error too large: {at_hidden}");
    }

    #[test]
    fn unknown_site_yields_zero_objective() {
        let (spec, trace) = setup();
        let obj = SiteWalltimeObjective::new(&spec, &trace, "NOT-A-SITE");
        assert_eq!(obj.job_count(), 0);
        assert_eq!(obj.evaluate(1.0), 0.0);
    }

    #[test]
    fn repeated_multipliers_hit_the_response_cache() {
        let (spec, trace) = setup();
        let obj = SiteWalltimeObjective::new(&spec, &trace, "CERN");
        let first = obj.evaluate(1.25);
        assert_eq!(obj.simulations_run(), 1);
        let again = obj.evaluate(1.25);
        assert_eq!(obj.simulations_run(), 1, "re-evaluation is a cache hit");
        assert_eq!(first, again);
        obj.evaluate(0.75);
        assert_eq!(obj.simulations_run(), 2);
    }
}
