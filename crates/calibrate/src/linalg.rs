//! Small dense linear algebra used by the optimisers.
//!
//! The Bayesian optimiser needs Cholesky factorisation to fit its Gaussian
//! process; CMA-ES needs the eigendecomposition of its (symmetric) covariance
//! matrix. Dimensions here are tiny (the calibration itself is per-site and
//! one-dimensional; the optimisers are exercised up to ~10 dimensions in
//! tests), so simple O(n³) routines are entirely adequate and keep the crate
//! dependency-free.

/// A dense, row-major, square-or-rectangular matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a nested array (rows of equal length).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.concat(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product.
    pub fn mat_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Cholesky factorisation of a symmetric positive-definite matrix:
/// returns lower-triangular `L` with `A = L Lᵀ`, or `None` when the matrix is
/// not (numerically) positive definite.
pub fn cholesky(a: &Matrix) -> Option<Matrix> {
    assert_eq!(a.rows(), a.cols(), "Cholesky needs a square matrix");
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Some(l)
}

/// Solves `A x = b` given the Cholesky factor `L` of `A` (forward then back
/// substitution).
pub fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(b.len(), n);
    // Forward: L y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * y[k];
        }
        y[i] = sum / l[(i, i)];
    }
    // Backward: Lᵀ x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    x
}

/// Jacobi eigendecomposition of a symmetric matrix: returns
/// `(eigenvalues, eigenvectors)` where column `k` of the eigenvector matrix
/// corresponds to `eigenvalues[k]`.
pub fn symmetric_eigen(a: &Matrix) -> (Vec<f64>, Matrix) {
    assert_eq!(
        a.rows(),
        a.cols(),
        "eigendecomposition needs a square matrix"
    );
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    for _sweep in 0..100 {
        // Largest off-diagonal magnitude.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off < 1e-24 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if m[(p, q)].abs() < 1e-18 {
                    continue;
                }
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * m[(p, q)]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let eigenvalues = (0..n).map(|i| m[(i, i)]).collect();
    (eigenvalues, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_indexing() {
        let m = Matrix::identity(3);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 0.0);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.mat_vec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn cholesky_of_spd_matrix_roundtrips() {
        let a = Matrix::from_rows(&[
            vec![4.0, 12.0, -16.0],
            vec![12.0, 37.0, -43.0],
            vec![-16.0, -43.0, 98.0],
        ]);
        let l = cholesky(&a).unwrap();
        // Reconstruct A = L L^T and compare.
        for i in 0..3 {
            for j in 0..3 {
                let mut sum = 0.0;
                for k in 0..3 {
                    sum += l[(i, k)] * l[(j, k)];
                }
                assert!((sum - a[(i, j)]).abs() < 1e-9, "mismatch at ({i},{j})");
            }
        }
        // Known factor for this classic example: L = [[2,0,0],[6,1,0],[-8,5,3]].
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 1.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite_matrix() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn cholesky_solve_recovers_solution() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let x_true = vec![1.5, -2.0];
        let b = a.mat_vec(&x_true);
        let l = cholesky(&a).unwrap();
        let x = cholesky_solve(&l, &b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 7.0]]);
        let (mut vals, _) = symmetric_eigen(&a);
        vals.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn eigen_reconstructs_symmetric_matrix() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ]);
        let (vals, vecs) = symmetric_eigen(&a);
        // A ≈ V diag(vals) V^T
        for i in 0..3 {
            for j in 0..3 {
                let mut sum = 0.0;
                for k in 0..3 {
                    sum += vecs[(i, k)] * vals[k] * vecs[(j, k)];
                }
                assert!((sum - a[(i, j)]).abs() < 1e-6, "mismatch at ({i},{j})");
            }
        }
        // Eigenvalues of this matrix: 1, 2, 4.
        let mut sorted = vals.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((sorted[0] - 1.0).abs() < 1e-6);
        assert!((sorted[2] - 4.0).abs() < 1e-6);
    }
}
