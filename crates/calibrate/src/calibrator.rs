//! Per-site calibration orchestration (Fig. 3).

use cgsim_des::stats::geometric_mean;
use cgsim_platform::PlatformSpec;
use cgsim_workload::Trace;
use serde::{Deserialize, Serialize};

use crate::objective::SiteWalltimeObjective;
use crate::optimizer::OptimizerKind;

/// Calibration outcome for one site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteCalibration {
    /// Site name.
    pub site: String,
    /// Number of historical jobs used.
    pub jobs: usize,
    /// Relative walltime MAE with the nominal (uncalibrated) speed.
    pub nominal_error: f64,
    /// Relative walltime MAE with the calibrated speed.
    pub calibrated_error: f64,
    /// The speed multiplier found by the optimiser.
    pub best_multiplier: f64,
    /// Objective evaluations spent on this site.
    pub evaluations: usize,
}

/// Grid-wide calibration report (the data behind Fig. 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Per-site calibrations, sorted by site name.
    pub sites: Vec<SiteCalibration>,
    /// Geometric mean of the per-site error before calibration.
    pub geometric_mean_before: f64,
    /// Geometric mean of the per-site error after calibration.
    pub geometric_mean_after: f64,
    /// Optimiser used.
    pub optimizer: String,
    /// The platform specification with calibrated speed multipliers applied.
    pub calibrated_spec: PlatformSpec,
}

impl CalibrationReport {
    /// How much the geometric-mean error improved (before / after).
    pub fn improvement_factor(&self) -> f64 {
        if self.geometric_mean_after <= 0.0 {
            f64::INFINITY
        } else {
            self.geometric_mean_before / self.geometric_mean_after
        }
    }

    /// CSV rendering of the per-site table (the Fig. 3 data series).
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("site,jobs,nominal_error,calibrated_error,best_multiplier,evaluations\n");
        for s in &self.sites {
            out.push_str(&format!(
                "{},{},{:.4},{:.4},{:.4},{}\n",
                s.site,
                s.jobs,
                s.nominal_error,
                s.calibrated_error,
                s.best_multiplier,
                s.evaluations
            ));
        }
        out
    }
}

/// Per-site calibration driver.
#[derive(Debug, Clone)]
pub struct Calibrator {
    /// Which optimisation method to use.
    pub optimizer: OptimizerKind,
    /// Objective-evaluation budget per site.
    pub budget_per_site: usize,
    /// Search bounds for the speed multiplier.
    pub multiplier_bounds: (f64, f64),
    /// RNG seed (forked per site).
    pub seed: u64,
    /// Calibrate sites on multiple threads.
    pub parallel: bool,
}

impl Default for Calibrator {
    fn default() -> Self {
        Calibrator {
            optimizer: OptimizerKind::Random,
            budget_per_site: 30,
            multiplier_bounds: (0.2, 3.0),
            seed: 0xCA11B,
            parallel: true,
        }
    }
}

impl Calibrator {
    /// Calibrates every site of `spec` that has historical jobs in `trace`.
    pub fn calibrate(&self, spec: &PlatformSpec, trace: &Trace) -> CalibrationReport {
        let site_names: Vec<String> = spec
            .sites
            .iter()
            .map(|s| s.name.clone())
            .filter(|name| trace.jobs_for_site(name).next().is_some())
            .collect();

        let calibrate_one = |(i, name): (usize, &String)| -> SiteCalibration {
            let objective = SiteWalltimeObjective::new(spec, trace, name);
            let nominal_error = objective.evaluate(1.0);
            let mut optimizer = self.optimizer.build(self.seed.wrapping_add(i as u64));
            let bounds = [self.multiplier_bounds];
            let result = optimizer.optimize(
                &mut |x: &[f64]| objective.evaluate(x[0]),
                &bounds,
                self.budget_per_site,
            );
            // Keep the better of nominal and optimised (the optimiser can only
            // improve the configuration, never regress it).
            let (best_multiplier, calibrated_error) = if result.best_value <= nominal_error {
                (result.best_x[0], result.best_value)
            } else {
                (1.0, nominal_error)
            };
            SiteCalibration {
                site: name.clone(),
                jobs: objective.job_count(),
                nominal_error,
                calibrated_error,
                best_multiplier,
                evaluations: result.evaluations,
            }
        };

        let mut sites: Vec<SiteCalibration> = if self.parallel && site_names.len() > 1 {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(site_names.len());
            let chunk = site_names.len().div_ceil(threads);
            let indexed: Vec<(usize, &String)> = site_names.iter().enumerate().collect();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for chunk_items in indexed.chunks(chunk) {
                    handles.push(scope.spawn(move || {
                        chunk_items
                            .iter()
                            .map(|&(i, name)| calibrate_one((i, name)))
                            .collect::<Vec<_>>()
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("calibration worker panicked"))
                    .collect()
            })
        } else {
            site_names
                .iter()
                .enumerate()
                .map(|(i, name)| calibrate_one((i, name)))
                .collect()
        };
        sites.sort_by(|a, b| a.site.cmp(&b.site));

        // Floor the per-site errors at a small epsilon so the geometric mean
        // is defined even for perfectly calibrated sites.
        let before: Vec<f64> = sites.iter().map(|s| s.nominal_error.max(1e-4)).collect();
        let after: Vec<f64> = sites.iter().map(|s| s.calibrated_error.max(1e-4)).collect();
        let (gm_before, gm_after) = if sites.is_empty() {
            (0.0, 0.0)
        } else {
            (geometric_mean(&before), geometric_mean(&after))
        };

        // Apply the calibrated multipliers to a copy of the spec.
        let mut calibrated_spec = spec.clone();
        for cal in &sites {
            if let Some(site) = calibrated_spec
                .sites
                .iter_mut()
                .find(|s| s.name == cal.site)
            {
                site.speed_multiplier = cal.best_multiplier;
            }
        }

        CalibrationReport {
            sites,
            geometric_mean_before: gm_before,
            geometric_mean_after: gm_after,
            optimizer: self.optimizer.label().to_string(),
            calibrated_spec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_platform::presets::example_platform;
    use cgsim_workload::{TraceConfig, TraceGenerator};

    fn setup(jobs: usize) -> (PlatformSpec, Trace) {
        let spec = example_platform();
        let mut cfg = TraceConfig::with_jobs(jobs, 55);
        cfg.mean_file_bytes = 1e8;
        let trace = TraceGenerator::new(cfg).generate(&spec);
        (spec, trace)
    }

    #[test]
    fn calibration_reduces_geometric_mean_error() {
        let (spec, trace) = setup(240);
        let calibrator = Calibrator {
            budget_per_site: 20,
            parallel: true,
            ..Calibrator::default()
        };
        let report = calibrator.calibrate(&spec, &trace);
        assert_eq!(report.sites.len(), 4);
        assert!(
            report.geometric_mean_after < report.geometric_mean_before,
            "before {} after {}",
            report.geometric_mean_before,
            report.geometric_mean_after
        );
        assert!(report.improvement_factor() > 1.5);
        for site in &report.sites {
            assert!(site.calibrated_error <= site.nominal_error + 1e-9);
            assert!(site.jobs > 0);
            assert!(site.evaluations <= 20);
        }
        // The calibrated spec carries the multipliers.
        assert!(report
            .calibrated_spec
            .sites
            .iter()
            .any(|s| (s.speed_multiplier - 1.0).abs() > 1e-6));
        let csv = report.to_csv();
        assert!(csv.lines().count() == 5);
        assert!(csv.contains("BNL"));
    }

    #[test]
    fn calibrated_multipliers_approach_hidden_truth() {
        let (spec, trace) = setup(400);
        let calibrator = Calibrator {
            budget_per_site: 40,
            ..Calibrator::default()
        };
        let report = calibrator.calibrate(&spec, &trace);
        let mut close = 0;
        for site in &report.sites {
            let hidden = trace.hidden_site_multipliers[&site.site];
            if (site.best_multiplier - hidden).abs() / hidden < 0.25 {
                close += 1;
            }
        }
        assert!(
            close >= 3,
            "expected most multipliers near the hidden truth; report: {:?}",
            report
                .sites
                .iter()
                .map(|s| (s.site.clone(), s.best_multiplier))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn serial_and_parallel_calibration_agree() {
        let (spec, trace) = setup(160);
        let serial = Calibrator {
            parallel: false,
            budget_per_site: 10,
            ..Calibrator::default()
        }
        .calibrate(&spec, &trace);
        let parallel = Calibrator {
            parallel: true,
            budget_per_site: 10,
            ..Calibrator::default()
        }
        .calibrate(&spec, &trace);
        assert_eq!(serial.sites.len(), parallel.sites.len());
        for (a, b) in serial.sites.iter().zip(&parallel.sites) {
            assert_eq!(a.site, b.site);
            assert!((a.best_multiplier - b.best_multiplier).abs() < 1e-12);
            assert!((a.calibrated_error - b.calibrated_error).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_trace_produces_empty_report() {
        let spec = example_platform();
        let report = Calibrator::default().calibrate(&spec, &Trace::default());
        assert!(report.sites.is_empty());
        assert_eq!(report.geometric_mean_before, 0.0);
    }
}
