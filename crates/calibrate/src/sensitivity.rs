//! Parameter sensitivity analysis (§4.2).
//!
//! "Through comprehensive sensitivity analysis, we evaluate the impact of
//! various grid configuration parameters on job execution accuracy, including
//! CPU core counts, processing speeds, memory capacities, and intra-site
//! network bandwidths. Our analysis identifies CPU core processing speed as
//! the dominant factor influencing job walltime accuracy." This module
//! reproduces that study: each parameter is scaled across a range while the
//! others stay nominal, the walltime error is measured, and the parameters
//! are ranked by the spread of error they induce.

use cgsim_core::{ExecutionConfig, Simulation};
use cgsim_platform::PlatformSpec;
use cgsim_workload::Trace;
use serde::{Deserialize, Serialize};

/// The grid configuration parameters studied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Parameter {
    /// Per-core processing speed (the calibration parameter of Fig. 3).
    CpuSpeed,
    /// CPU core count per site.
    CoreCount,
    /// Intra-site network bandwidth.
    InternalBandwidth,
    /// Memory capacity per worker node.
    MemoryCapacity,
}

impl Parameter {
    /// All studied parameters.
    pub fn all() -> [Parameter; 4] {
        [
            Parameter::CpuSpeed,
            Parameter::CoreCount,
            Parameter::InternalBandwidth,
            Parameter::MemoryCapacity,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Parameter::CpuSpeed => "cpu-speed",
            Parameter::CoreCount => "core-count",
            Parameter::InternalBandwidth => "internal-bandwidth",
            Parameter::MemoryCapacity => "memory-capacity",
        }
    }
}

/// Sensitivity of one parameter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParameterSensitivity {
    /// The parameter.
    pub parameter: Parameter,
    /// (scale factor, walltime error) pairs.
    pub samples: Vec<(f64, f64)>,
    /// Spread of the error across the scale range (max − min).
    pub impact: f64,
}

/// Full sensitivity report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensitivityReport {
    /// Per-parameter results, sorted by decreasing impact.
    pub parameters: Vec<ParameterSensitivity>,
}

impl SensitivityReport {
    /// The parameter with the largest impact on walltime error.
    pub fn dominant(&self) -> Parameter {
        self.parameters[0].parameter
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("parameter,scale,error\n");
        for p in &self.parameters {
            for (scale, error) in &p.samples {
                out.push_str(&format!("{},{scale},{error}\n", p.parameter.label()));
            }
        }
        out
    }
}

/// The sensitivity study driver.
#[derive(Debug, Clone)]
pub struct SensitivityStudy {
    /// Scale factors applied to each parameter.
    pub scales: Vec<f64>,
    /// Maximum number of trace jobs to use per evaluation (keeps the study fast).
    pub max_jobs: usize,
}

impl Default for SensitivityStudy {
    fn default() -> Self {
        SensitivityStudy {
            scales: vec![0.5, 0.75, 1.0, 1.5, 2.0],
            max_jobs: 300,
        }
    }
}

impl SensitivityStudy {
    fn scaled_spec(spec: &PlatformSpec, parameter: Parameter, scale: f64) -> PlatformSpec {
        let mut scaled = spec.clone();
        for site in &mut scaled.sites {
            match parameter {
                Parameter::CpuSpeed => site.speed_multiplier *= scale,
                Parameter::CoreCount => {
                    for host in &mut site.hosts {
                        host.cores = ((host.cores as f64 * scale).round() as u32).max(1);
                    }
                }
                Parameter::InternalBandwidth => {
                    site.internal_bandwidth_gbps = (site.internal_bandwidth_gbps * scale).max(0.01)
                }
                Parameter::MemoryCapacity => {
                    for host in &mut site.hosts {
                        host.ram_gb = (host.ram_gb * scale).max(1.0);
                    }
                }
            }
        }
        scaled
    }

    fn walltime_error(spec: &PlatformSpec, trace: &Trace) -> f64 {
        let mut execution = ExecutionConfig::with_policy("historical-panda");
        execution.monitoring = cgsim_monitor::MonitoringConfig::disabled();
        let results = Simulation::builder()
            .platform_spec(spec)
            .expect("spec is valid")
            .trace(trace.clone())
            .policy_name("historical-panda")
            .execution(execution)
            .run()
            .expect("sensitivity simulation runs");
        let per_site = results.walltime_error_by_site();
        if per_site.is_empty() {
            return 0.0;
        }
        let errors: Vec<f64> = per_site.values().map(|e| e.overall).collect();
        cgsim_des::stats::mean(&errors)
    }

    /// Runs the study.
    pub fn run(&self, spec: &PlatformSpec, trace: &Trace) -> SensitivityReport {
        let subset = Trace {
            jobs: trace.jobs.iter().take(self.max_jobs).cloned().collect(),
            hidden_site_multipliers: trace.hidden_site_multipliers.clone(),
        };
        let mut parameters: Vec<ParameterSensitivity> = Parameter::all()
            .into_iter()
            .map(|parameter| {
                let samples: Vec<(f64, f64)> = self
                    .scales
                    .iter()
                    .map(|&scale| {
                        let scaled = Self::scaled_spec(spec, parameter, scale);
                        (scale, Self::walltime_error(&scaled, &subset))
                    })
                    .collect();
                let min = samples
                    .iter()
                    .map(|&(_, e)| e)
                    .fold(f64::INFINITY, f64::min);
                let max = samples.iter().map(|&(_, e)| e).fold(0.0f64, f64::max);
                ParameterSensitivity {
                    parameter,
                    samples,
                    impact: max - min,
                }
            })
            .collect();
        parameters.sort_by(|a, b| b.impact.partial_cmp(&a.impact).expect("impacts are finite"));
        SensitivityReport { parameters }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_platform::presets::example_platform;
    use cgsim_workload::{TraceConfig, TraceGenerator};

    #[test]
    fn cpu_speed_is_the_dominant_parameter() {
        let spec = example_platform();
        let mut cfg = TraceConfig::with_jobs(150, 77);
        cfg.mean_file_bytes = 1e8;
        let trace = TraceGenerator::new(cfg).generate(&spec);
        let study = SensitivityStudy {
            scales: vec![0.5, 1.0, 2.0],
            max_jobs: 150,
        };
        let report = study.run(&spec, &trace);
        assert_eq!(report.parameters.len(), 4);
        assert_eq!(report.dominant(), Parameter::CpuSpeed);
        // Memory has no effect on walltime in this model.
        let memory = report
            .parameters
            .iter()
            .find(|p| p.parameter == Parameter::MemoryCapacity)
            .unwrap();
        assert!(memory.impact < report.parameters[0].impact / 10.0);
        let csv = report.to_csv();
        assert!(csv.contains("cpu-speed"));
        assert!(csv.lines().count() > 4);
    }

    #[test]
    fn parameter_labels_are_stable() {
        assert_eq!(Parameter::CpuSpeed.label(), "cpu-speed");
        assert_eq!(Parameter::all().len(), 4);
    }
}
