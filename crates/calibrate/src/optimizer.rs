//! The four calibration optimisers of paper §4.2.
//!
//! All optimisers minimise a black-box objective `f: R^d -> R` over a
//! box-constrained domain with a fixed evaluation budget — exactly the
//! setting of the per-site speed calibration (d = 1 there, but every method
//! is implemented for general d and unit-tested on standard functions).

use cgsim_des::rng::Rng;
use serde::{Deserialize, Serialize};

use crate::linalg::{cholesky, cholesky_solve, symmetric_eigen, Matrix};

/// Result of one optimisation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptResult {
    /// Best point found.
    pub best_x: Vec<f64>,
    /// Objective value at the best point.
    pub best_value: f64,
    /// Number of objective evaluations performed.
    pub evaluations: usize,
    /// Best-so-far value after each evaluation (for convergence plots).
    pub history: Vec<f64>,
}

/// The optimiser abstraction shared by all four methods.
pub trait Optimizer {
    /// Human-readable method name.
    fn name(&self) -> &str;

    /// Minimises `objective` over the box `bounds` using at most `budget`
    /// evaluations.
    fn optimize(
        &mut self,
        objective: &mut dyn FnMut(&[f64]) -> f64,
        bounds: &[(f64, f64)],
        budget: usize,
    ) -> OptResult;
}

/// Which optimisation method to use (serialisable configuration value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OptimizerKind {
    /// Brute-force grid search.
    Grid,
    /// Uniform random sampling (the paper's best performer).
    #[default]
    Random,
    /// Gaussian-process Bayesian optimisation with expected improvement.
    Bayesian,
    /// Covariance Matrix Adaptation Evolution Strategy.
    CmaEs,
}

impl OptimizerKind {
    /// Instantiates the corresponding optimiser.
    pub fn build(self, seed: u64) -> Box<dyn Optimizer> {
        match self {
            OptimizerKind::Grid => Box::new(GridSearch::new()),
            OptimizerKind::Random => Box::new(RandomSearch::new(seed)),
            OptimizerKind::Bayesian => Box::new(BayesianOptimizer::new(seed)),
            OptimizerKind::CmaEs => Box::new(CmaEs::new(seed)),
        }
    }

    /// All four methods, in the order the paper lists them.
    pub fn all() -> [OptimizerKind; 4] {
        [
            OptimizerKind::Grid,
            OptimizerKind::Random,
            OptimizerKind::Bayesian,
            OptimizerKind::CmaEs,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            OptimizerKind::Grid => "brute-force",
            OptimizerKind::Random => "random-search",
            OptimizerKind::Bayesian => "bayesian-opt",
            OptimizerKind::CmaEs => "cma-es",
        }
    }
}

fn clamp_to_bounds(x: &mut [f64], bounds: &[(f64, f64)]) {
    for (xi, &(lo, hi)) in x.iter_mut().zip(bounds) {
        *xi = xi.clamp(lo, hi);
    }
}

fn track(history: &mut Vec<f64>, value: f64) {
    let best = history.last().copied().unwrap_or(f64::INFINITY).min(value);
    history.push(best);
}

// ---------------------------------------------------------------------------
// Brute-force grid search
// ---------------------------------------------------------------------------

/// Exhaustive grid search ("theoretically optimal but computationally
/// infeasible across 150 sites" — here it is feasible because the search is
/// per-site and one-dimensional, but it spends its entire budget on a fixed
/// lattice).
#[derive(Debug, Default)]
pub struct GridSearch;

impl GridSearch {
    /// Creates the optimiser.
    pub fn new() -> Self {
        Self
    }
}

impl Optimizer for GridSearch {
    fn name(&self) -> &str {
        "brute-force"
    }

    fn optimize(
        &mut self,
        objective: &mut dyn FnMut(&[f64]) -> f64,
        bounds: &[(f64, f64)],
        budget: usize,
    ) -> OptResult {
        let d = bounds.len();
        assert!(d > 0 && budget > 0);
        // Points per dimension so that total evaluations <= budget.
        let per_dim = (budget as f64).powf(1.0 / d as f64).floor().max(1.0) as usize;
        let mut best_x = vec![0.0; d];
        let mut best_value = f64::INFINITY;
        let mut history = Vec::new();
        let total: usize = per_dim.pow(d as u32);
        let mut evaluations = 0;
        for flat in 0..total {
            let mut x = Vec::with_capacity(d);
            let mut rest = flat;
            for &(lo, hi) in bounds {
                let idx = rest % per_dim;
                rest /= per_dim;
                let frac = if per_dim == 1 {
                    0.5
                } else {
                    idx as f64 / (per_dim - 1) as f64
                };
                x.push(lo + frac * (hi - lo));
            }
            let value = objective(&x);
            evaluations += 1;
            track(&mut history, value);
            if value < best_value {
                best_value = value;
                best_x = x;
            }
        }
        OptResult {
            best_x,
            best_value,
            evaluations,
            history,
        }
    }
}

// ---------------------------------------------------------------------------
// Random search
// ---------------------------------------------------------------------------

/// Uniform random sampling within the bounds — the method that achieved the
/// lowest average calibration error in the paper.
#[derive(Debug)]
pub struct RandomSearch {
    rng: Rng,
}

impl RandomSearch {
    /// Creates the optimiser with a seed.
    pub fn new(seed: u64) -> Self {
        RandomSearch {
            rng: Rng::new(seed),
        }
    }
}

impl Optimizer for RandomSearch {
    fn name(&self) -> &str {
        "random-search"
    }

    fn optimize(
        &mut self,
        objective: &mut dyn FnMut(&[f64]) -> f64,
        bounds: &[(f64, f64)],
        budget: usize,
    ) -> OptResult {
        assert!(!bounds.is_empty() && budget > 0);
        let mut best_x = Vec::new();
        let mut best_value = f64::INFINITY;
        let mut history = Vec::new();
        for _ in 0..budget {
            let x: Vec<f64> = bounds
                .iter()
                .map(|&(lo, hi)| self.rng.uniform_range(lo, hi))
                .collect();
            let value = objective(&x);
            track(&mut history, value);
            if value < best_value {
                best_value = value;
                best_x = x;
            }
        }
        OptResult {
            best_x,
            best_value,
            evaluations: budget,
            history,
        }
    }
}

// ---------------------------------------------------------------------------
// Bayesian optimisation (GP + expected improvement)
// ---------------------------------------------------------------------------

/// Gaussian-process Bayesian optimisation with an RBF kernel and expected
/// improvement acquisition, maximised over a random candidate pool.
#[derive(Debug)]
pub struct BayesianOptimizer {
    rng: Rng,
    /// Number of initial random samples before the GP is used.
    pub initial_samples: usize,
    /// Number of random candidates scored by the acquisition per iteration.
    pub candidates: usize,
    /// RBF length-scale as a fraction of each dimension's range.
    pub length_scale_fraction: f64,
}

impl BayesianOptimizer {
    /// Creates the optimiser with a seed and default hyper-parameters.
    pub fn new(seed: u64) -> Self {
        BayesianOptimizer {
            rng: Rng::new(seed),
            initial_samples: 5,
            candidates: 256,
            length_scale_fraction: 0.2,
        }
    }

    fn kernel(&self, a: &[f64], b: &[f64], scales: &[f64]) -> f64 {
        let dist2: f64 = a
            .iter()
            .zip(b)
            .zip(scales)
            .map(|((x, y), s)| ((x - y) / s).powi(2))
            .sum();
        (-0.5 * dist2).exp()
    }
}

/// Standard normal PDF.
fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF (Abramowitz–Stegun approximation).
fn normal_cdf(z: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.2316419 * z.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let tail = normal_pdf(z) * poly;
    if z >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

impl Optimizer for BayesianOptimizer {
    fn name(&self) -> &str {
        "bayesian-opt"
    }

    fn optimize(
        &mut self,
        objective: &mut dyn FnMut(&[f64]) -> f64,
        bounds: &[(f64, f64)],
        budget: usize,
    ) -> OptResult {
        assert!(!bounds.is_empty() && budget > 0);
        let scales: Vec<f64> = bounds
            .iter()
            .map(|&(lo, hi)| ((hi - lo) * self.length_scale_fraction).max(1e-9))
            .collect();

        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        let mut history = Vec::new();

        let init = self.initial_samples.min(budget);
        for _ in 0..init {
            let x: Vec<f64> = bounds
                .iter()
                .map(|&(lo, hi)| self.rng.uniform_range(lo, hi))
                .collect();
            let y = objective(&x);
            track(&mut history, y);
            xs.push(x);
            ys.push(y);
        }

        while ys.len() < budget {
            // Fit the GP: K + jitter, alpha = K^-1 (y - mean).
            let n = xs.len();
            let mean_y: f64 = ys.iter().sum::<f64>() / n as f64;
            let mut k = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    k[(i, j)] = self.kernel(&xs[i], &xs[j], &scales);
                }
                k[(i, i)] += 1e-6;
            }
            let centered: Vec<f64> = ys.iter().map(|y| y - mean_y).collect();
            let next = match cholesky(&k) {
                Some(l) => {
                    let alpha = cholesky_solve(&l, &centered);
                    let best_y = ys.iter().cloned().fold(f64::INFINITY, f64::min);
                    // Score random candidates by expected improvement.
                    let mut best_candidate: Option<(Vec<f64>, f64)> = None;
                    for _ in 0..self.candidates {
                        let x: Vec<f64> = bounds
                            .iter()
                            .map(|&(lo, hi)| self.rng.uniform_range(lo, hi))
                            .collect();
                        let kx: Vec<f64> =
                            xs.iter().map(|xi| self.kernel(&x, xi, &scales)).collect();
                        let mu = mean_y + kx.iter().zip(&alpha).map(|(a, b)| a * b).sum::<f64>();
                        // Predictive variance: k(x,x) - k_x^T K^-1 k_x.
                        let v = cholesky_solve(&l, &kx);
                        let var =
                            (1.0 - kx.iter().zip(&v).map(|(a, b)| a * b).sum::<f64>()).max(1e-12);
                        let sigma = var.sqrt();
                        let z = (best_y - mu) / sigma;
                        let ei = (best_y - mu) * normal_cdf(z) + sigma * normal_pdf(z);
                        match &best_candidate {
                            Some((_, best_ei)) if ei <= *best_ei => {}
                            _ => best_candidate = Some((x, ei)),
                        }
                    }
                    best_candidate.map(|(x, _)| x).unwrap_or_else(|| {
                        bounds
                            .iter()
                            .map(|&(lo, hi)| self.rng.uniform_range(lo, hi))
                            .collect()
                    })
                }
                // Numerical trouble: fall back to a random point.
                None => bounds
                    .iter()
                    .map(|&(lo, hi)| self.rng.uniform_range(lo, hi))
                    .collect(),
            };
            let y = objective(&next);
            track(&mut history, y);
            xs.push(next);
            ys.push(y);
        }

        let (best_idx, best_value) = ys
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("objective returned NaN"))
            .map(|(i, &v)| (i, v))
            .expect("at least one evaluation");
        OptResult {
            best_x: xs[best_idx].clone(),
            best_value,
            evaluations: ys.len(),
            history,
        }
    }
}

// ---------------------------------------------------------------------------
// CMA-ES
// ---------------------------------------------------------------------------

/// Covariance Matrix Adaptation Evolution Strategy (Hansen 2016), with box
/// constraints handled by clamping sampled candidates.
#[derive(Debug)]
pub struct CmaEs {
    rng: Rng,
    /// Initial step size as a fraction of each dimension's range.
    pub initial_sigma_fraction: f64,
}

impl CmaEs {
    /// Creates the optimiser with a seed.
    pub fn new(seed: u64) -> Self {
        CmaEs {
            rng: Rng::new(seed),
            initial_sigma_fraction: 0.3,
        }
    }
}

impl Optimizer for CmaEs {
    fn name(&self) -> &str {
        "cma-es"
    }

    #[allow(clippy::needless_range_loop)]
    fn optimize(
        &mut self,
        objective: &mut dyn FnMut(&[f64]) -> f64,
        bounds: &[(f64, f64)],
        budget: usize,
    ) -> OptResult {
        let n = bounds.len();
        assert!(n > 0 && budget > 0);
        let nf = n as f64;

        // Strategy parameters (standard defaults).
        let lambda = (4.0 + (3.0 * nf.ln()).floor()).max(4.0) as usize;
        let mu = lambda / 2;
        let weights_raw: Vec<f64> = (0..mu)
            .map(|i| ((mu as f64 + 0.5).ln() - ((i + 1) as f64).ln()).max(0.0))
            .collect();
        let w_sum: f64 = weights_raw.iter().sum();
        let weights: Vec<f64> = weights_raw.iter().map(|w| w / w_sum).collect();
        let mu_eff = 1.0 / weights.iter().map(|w| w * w).sum::<f64>();
        let cc = (4.0 + mu_eff / nf) / (nf + 4.0 + 2.0 * mu_eff / nf);
        let cs = (mu_eff + 2.0) / (nf + mu_eff + 5.0);
        let c1 = 2.0 / ((nf + 1.3).powi(2) + mu_eff);
        let cmu =
            (1.0 - c1).min(2.0 * (mu_eff - 2.0 + 1.0 / mu_eff) / ((nf + 2.0).powi(2) + mu_eff));
        let damps = 1.0 + 2.0 * ((mu_eff - 1.0) / (nf + 1.0)).sqrt().max(0.0) + cs;
        let chi_n = nf.sqrt() * (1.0 - 1.0 / (4.0 * nf) + 1.0 / (21.0 * nf * nf));

        // Initial state: centre of the box, sigma from the range.
        let ranges: Vec<f64> = bounds.iter().map(|&(lo, hi)| hi - lo).collect();
        let mut mean: Vec<f64> = bounds.iter().map(|&(lo, hi)| 0.5 * (lo + hi)).collect();
        let mut sigma = self.initial_sigma_fraction * (ranges.iter().sum::<f64>() / nf).max(1e-12);
        let mut cov = Matrix::identity(n);
        let mut p_c = vec![0.0; n];
        let mut p_s = vec![0.0; n];

        let mut best_x = mean.clone();
        let mut best_value = f64::INFINITY;
        let mut history = Vec::new();
        let mut evaluations = 0;
        let mut generation = 0usize;

        while evaluations < budget {
            // Eigendecomposition C = B D^2 B^T for sampling.
            let (eigvals, eigvecs) = symmetric_eigen(&cov);
            let d_sqrt: Vec<f64> = eigvals.iter().map(|&v| v.max(1e-14).sqrt()).collect();

            // Sample lambda candidates.
            let mut population: Vec<(Vec<f64>, Vec<f64>, f64)> = Vec::with_capacity(lambda);
            for _ in 0..lambda {
                if evaluations >= budget {
                    break;
                }
                let z: Vec<f64> = (0..n).map(|_| self.rng.normal_std()).collect();
                // y = B D z
                let mut y = vec![0.0; n];
                for i in 0..n {
                    for k in 0..n {
                        y[i] += eigvecs[(i, k)] * d_sqrt[k] * z[k];
                    }
                }
                let mut x: Vec<f64> = (0..n).map(|i| mean[i] + sigma * y[i]).collect();
                clamp_to_bounds(&mut x, bounds);
                let value = objective(&x);
                evaluations += 1;
                track(&mut history, value);
                if value < best_value {
                    best_value = value;
                    best_x = x.clone();
                }
                population.push((x, y, value));
            }
            if population.len() < 2 {
                break;
            }
            generation += 1;
            population.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("objective returned NaN"));

            // Recombination.
            let top = population.len().min(mu).max(1);
            let mut new_mean = vec![0.0; n];
            let mut y_w = vec![0.0; n];
            for (rank, (x, y, _)) in population.iter().take(top).enumerate() {
                let w = weights.get(rank).copied().unwrap_or(0.0);
                for i in 0..n {
                    new_mean[i] += w * x[i];
                    y_w[i] += w * y[i];
                }
            }
            mean = new_mean;

            // Step-size path (using C^-1/2 y_w = B D^-1 B^T y_w).
            let mut c_inv_sqrt_yw = vec![0.0; n];
            for i in 0..n {
                for k in 0..n {
                    // (B D^-1 B^T)_{i,j} = sum_k B_{i,k} d_k^-1 B_{j,k}
                    let mut acc = 0.0;
                    for j in 0..n {
                        acc += eigvecs[(j, k)] * y_w[j];
                    }
                    c_inv_sqrt_yw[i] += eigvecs[(i, k)] / d_sqrt[k] * acc;
                }
            }
            for i in 0..n {
                p_s[i] = (1.0 - cs) * p_s[i] + (cs * (2.0 - cs) * mu_eff).sqrt() * c_inv_sqrt_yw[i];
            }
            let p_s_norm = p_s.iter().map(|v| v * v).sum::<f64>().sqrt();
            sigma *= ((cs / damps) * (p_s_norm / chi_n - 1.0)).exp();
            sigma = sigma.clamp(1e-12, ranges.iter().cloned().fold(0.0, f64::max));

            // Covariance path and rank-one / rank-mu update.
            let hsig = p_s_norm / (1.0 - (1.0 - cs).powi(2 * generation as i32)).sqrt() / chi_n
                < 1.4 + 2.0 / (nf + 1.0);
            let hsig_f = if hsig { 1.0 } else { 0.0 };
            for i in 0..n {
                p_c[i] = (1.0 - cc) * p_c[i] + hsig_f * (cc * (2.0 - cc) * mu_eff).sqrt() * y_w[i];
            }
            let mut new_cov = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    let rank_one = p_c[i] * p_c[j] + (1.0 - hsig_f) * cc * (2.0 - cc) * cov[(i, j)];
                    let mut rank_mu = 0.0;
                    for (rank, (_, y, _)) in population.iter().take(top).enumerate() {
                        let w = weights.get(rank).copied().unwrap_or(0.0);
                        rank_mu += w * y[i] * y[j];
                    }
                    new_cov[(i, j)] =
                        (1.0 - c1 - cmu) * cov[(i, j)] + c1 * rank_one + cmu * rank_mu;
                }
            }
            cov = new_cov;
        }

        OptResult {
            best_x,
            best_value,
            evaluations,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| (v - 0.7) * (v - 0.7)).sum()
    }

    fn rosenbrock(x: &[f64]) -> f64 {
        x.windows(2)
            .map(|w| 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2))
            .sum()
    }

    fn bounds(d: usize) -> Vec<(f64, f64)> {
        vec![(-2.0, 2.0); d]
    }

    #[test]
    fn grid_search_finds_1d_minimum() {
        let mut opt = GridSearch::new();
        let result = opt.optimize(&mut |x| sphere(x), &bounds(1), 200);
        assert!(result.best_value < 1e-3, "value={}", result.best_value);
        assert!((result.best_x[0] - 0.7).abs() < 0.05);
        assert_eq!(result.evaluations, 200);
    }

    #[test]
    fn random_search_finds_1d_minimum() {
        let mut opt = RandomSearch::new(3);
        let result = opt.optimize(&mut |x| sphere(x), &bounds(1), 200);
        assert!(result.best_value < 1e-2);
        assert!((result.best_x[0] - 0.7).abs() < 0.1);
    }

    #[test]
    fn bayesian_opt_beats_its_initial_samples() {
        let mut opt = BayesianOptimizer::new(7);
        let result = opt.optimize(&mut |x| sphere(x), &bounds(2), 40);
        assert_eq!(result.evaluations, 40);
        assert!(result.best_value < 0.05, "value={}", result.best_value);
        // History is the best-so-far curve: non-increasing.
        for pair in result.history.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-12);
        }
    }

    #[test]
    fn cmaes_minimises_sphere_in_3d() {
        let mut opt = CmaEs::new(11);
        let result = opt.optimize(&mut |x| sphere(x), &bounds(3), 600);
        assert!(result.best_value < 1e-3, "value={}", result.best_value);
        for &xi in &result.best_x {
            assert!((xi - 0.7).abs() < 0.05, "x={xi}");
        }
    }

    #[test]
    fn cmaes_makes_progress_on_rosenbrock() {
        let mut opt = CmaEs::new(13);
        let result = opt.optimize(&mut |x| rosenbrock(x), &bounds(2), 800);
        assert!(result.best_value < 0.5, "value={}", result.best_value);
    }

    #[test]
    fn all_optimizers_respect_budget_and_bounds() {
        let b = vec![(0.5, 1.5)];
        for kind in OptimizerKind::all() {
            let mut opt = kind.build(21);
            let mut evals = 0usize;
            let result = opt.optimize(
                &mut |x| {
                    evals += 1;
                    assert!(
                        x[0] >= 0.5 - 1e-12 && x[0] <= 1.5 + 1e-12,
                        "{kind:?} out of bounds"
                    );
                    (x[0] - 1.1).powi(2)
                },
                &b,
                60,
            );
            assert!(evals <= 60, "{kind:?} exceeded budget: {evals}");
            assert_eq!(result.evaluations, evals);
            assert!(
                result.best_value < 0.05,
                "{kind:?} value={}",
                result.best_value
            );
            assert!(!opt.name().is_empty());
        }
    }

    #[test]
    fn optimizers_are_deterministic_given_seed() {
        for kind in [
            OptimizerKind::Random,
            OptimizerKind::Bayesian,
            OptimizerKind::CmaEs,
        ] {
            let run = |seed: u64| {
                let mut opt = kind.build(seed);
                opt.optimize(&mut |x| sphere(x), &bounds(2), 30).best_value
            };
            assert_eq!(
                run(5).to_bits(),
                run(5).to_bits(),
                "{kind:?} not deterministic"
            );
        }
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(OptimizerKind::Grid.label(), "brute-force");
        assert_eq!(OptimizerKind::Random.label(), "random-search");
        assert_eq!(OptimizerKind::Bayesian.label(), "bayesian-opt");
        assert_eq!(OptimizerKind::CmaEs.label(), "cma-es");
        assert_eq!(OptimizerKind::default(), OptimizerKind::Random);
    }
}
