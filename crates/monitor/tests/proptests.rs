//! Property-based tests for the monitoring layer.

use cgsim_monitor::event::JobOutcome;
use cgsim_monitor::{MetricsReport, MonitoringCollector, MonitoringConfig};
use cgsim_workload::{JobId, JobKind, JobState};
use proptest::prelude::*;

fn arb_outcome() -> impl Strategy<Value = JobOutcome> {
    (
        any::<u64>(),
        0usize..5,
        1u32..9,
        0.0f64..1e5,
        0.0f64..1e4,
        0.0f64..1e5,
        any::<bool>(),
    )
        .prop_map(|(id, site, cores, submit, queue, wall, failed)| {
            let start = submit + queue;
            let end = start + wall;
            JobOutcome {
                id: JobId(id),
                kind: if cores > 1 {
                    JobKind::MultiCore
                } else {
                    JobKind::SingleCore
                },
                cores,
                work_hs23: wall * cores as f64,
                site: format!("SITE-{site}"),
                submit_time: submit,
                assign_time: submit,
                start_time: start,
                end_time: end,
                final_state: if failed {
                    JobState::Failed
                } else {
                    JobState::Finished
                },
                staged_bytes: 1_000,
                walltime: wall,
                queue_time: queue,
                hist_walltime: None,
                hist_queue_time: None,
            }
        })
}

proptest! {
    /// The metrics report is internally consistent for arbitrary outcome sets.
    #[test]
    fn metrics_report_is_consistent(outcomes in prop::collection::vec(arb_outcome(), 0..200)) {
        let report = MetricsReport::from_outcomes(&outcomes);
        prop_assert_eq!(report.total_jobs as usize, outcomes.len());
        prop_assert_eq!(report.finished_jobs + report.failed_jobs, report.total_jobs);
        prop_assert!(report.failure_rate >= 0.0 && report.failure_rate <= 1.0);
        prop_assert!(report.makespan_s >= 0.0);
        let per_site_total: u64 = report
            .per_site
            .values()
            .map(|s| s.finished_jobs + s.failed_jobs)
            .sum();
        prop_assert_eq!(per_site_total, report.total_jobs);
        prop_assert!(report.cpu_utilisation(10_000) >= 0.0);
        prop_assert!(report.cpu_utilisation(10_000) <= 1.0);
    }

    /// The collector's counters always match the transitions it was fed, and
    /// sampling only thins the event rows, never the counters.
    #[test]
    fn collector_counters_match_transitions(
        transitions in prop::collection::vec((0usize..3, 0u8..5), 0..300),
        stride in 1u64..10,
    ) {
        let mut collector = MonitoringCollector::new(
            vec!["A".into(), "B".into(), "C".into()],
            MonitoringConfig { sample_stride: stride, ..MonitoringConfig::default() },
        );
        let mut expected_finished = [0u64; 3];
        let mut expected_assigned = [0u64; 3];
        for (i, (site, state_code)) in transitions.iter().enumerate() {
            let state = match state_code {
                0 => JobState::Pending,
                1 => JobState::Assigned,
                2 => JobState::Running,
                3 => JobState::Finished,
                _ => JobState::Failed,
            };
            if state == JobState::Assigned {
                expected_assigned[*site] += 1;
            }
            if state == JobState::Finished {
                expected_finished[*site] += 1;
            }
            collector.record_transition(i as f64, JobId(i as u64), state, Some(*site), 10, 0);
        }
        for site in 0..3 {
            prop_assert_eq!(collector.site_counters(site).finished, expected_finished[site]);
            prop_assert_eq!(collector.site_counters(site).assigned, expected_assigned[site]);
        }
        prop_assert_eq!(collector.transitions_seen(), transitions.len() as u64);
        prop_assert!(collector.events().len() <= transitions.len());
        // CSV row count always matches the collected events.
        prop_assert_eq!(collector.events_csv().lines().count(), collector.events().len() + 1);
    }
}
