//! Dashboard rendering (the offline stand-in for Fig. 5).
//!
//! The paper's interactive web dashboard shows, for every site
//! simultaneously, the *node pressure* (CPUs in use), queue depth and the
//! jobs running on each node with hover-over detail. CGSim-RS renders the
//! same information as (a) an ASCII panel for terminal monitoring during a
//! run and (b) a self-contained HTML page with inline SVG bar charts that can
//! be opened in any browser — no server required.

use serde::{Deserialize, Serialize};

/// A point-in-time view of one site used by the dashboard renderers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SitePanel {
    /// Site name.
    pub site: String,
    /// Total cores at the site.
    pub total_cores: u64,
    /// Cores currently allocated to running jobs (node pressure).
    pub busy_cores: u64,
    /// Jobs waiting in the site queue.
    pub queued_jobs: u64,
    /// Jobs currently running.
    pub running_jobs: u64,
    /// Jobs finished so far.
    pub finished_jobs: u64,
    /// Jobs killed at the site by fault injection so far.
    pub interrupted_jobs: u64,
    /// Checkpoints durably written by jobs executing at the site so far.
    pub checkpoints: u64,
    /// Repair transfers that completed into the site (fresh replicas
    /// received from the re-replication planner) so far.
    #[serde(default)]
    pub repairs: u64,
    /// True when the site is up (not taken down by fault injection) at the
    /// time the panel was rendered.
    pub up: bool,
    /// Identifiers and core counts of a sample of running jobs (the
    /// hover-over detail of Fig. 5).
    pub running_sample: Vec<(u64, u32)>,
}

impl SitePanel {
    /// Node pressure in `[0, 1]`.
    pub fn pressure(&self) -> f64 {
        if self.total_cores == 0 {
            0.0
        } else {
            self.busy_cores as f64 / self.total_cores as f64
        }
    }
}

/// Renders an ASCII dashboard: one bar per site showing node pressure.
pub fn ascii_dashboard(time_s: f64, panels: &[SitePanel]) -> String {
    const BAR_WIDTH: usize = 40;
    let mut out = format!("CGSim dashboard @ t={time_s:.1}s\n");
    out.push_str(&format!(
        "{:<16} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}  node pressure\n",
        "site", "cores", "busy", "queue", "done", "intr", "ckpt", "rep"
    ));
    for p in panels {
        let filled = (p.pressure() * BAR_WIDTH as f64).round() as usize;
        let bar: String =
            "#".repeat(filled.min(BAR_WIDTH)) + &"-".repeat(BAR_WIDTH - filled.min(BAR_WIDTH));
        let status = if p.up { "" } else { "  DOWN" };
        out.push_str(&format!(
            "{:<16} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}  [{bar}] {:>4.0}%{status}\n",
            p.site,
            p.total_cores,
            p.busy_cores,
            p.queued_jobs,
            p.finished_jobs,
            p.interrupted_jobs,
            p.checkpoints,
            p.repairs,
            p.pressure() * 100.0
        ));
    }
    out
}

/// Renders a self-contained HTML dashboard with inline SVG bars and a
/// per-site running-job table.
pub fn html_dashboard(time_s: f64, panels: &[SitePanel]) -> String {
    let mut rows = String::new();
    for p in panels {
        let pct = (p.pressure() * 100.0).round();
        let mut jobs = String::new();
        for (job_id, cores) in p.running_sample.iter().take(10) {
            jobs.push_str(&format!("<li>job {job_id} ({cores} cores)</li>"));
        }
        rows.push_str(&format!(
            "<tr><td>{site}{down}</td><td>{total}</td><td>{busy}</td><td>{queued}</td><td>{running}</td><td>{finished}</td><td>{interrupted}</td><td>{checkpoints}</td><td>{repairs}</td>\
             <td><svg width=\"220\" height=\"18\"><rect width=\"220\" height=\"18\" fill=\"#eee\"/>\
             <rect width=\"{bar}\" height=\"18\" fill=\"#4a90d9\"/></svg> {pct}%</td>\
             <td><details><summary>{running} running</summary><ul>{jobs}</ul></details></td></tr>\n",
            site = p.site,
            down = if p.up { "" } else { " <b>(down)</b>" },
            total = p.total_cores,
            busy = p.busy_cores,
            queued = p.queued_jobs,
            running = p.running_jobs,
            finished = p.finished_jobs,
            interrupted = p.interrupted_jobs,
            checkpoints = p.checkpoints,
            repairs = p.repairs,
            bar = (p.pressure() * 220.0).round(),
            pct = pct,
            jobs = jobs,
        ));
    }
    format!(
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>CGSim dashboard</title>\
         <style>body{{font-family:sans-serif}}table{{border-collapse:collapse}}td,th{{border:1px solid #ccc;padding:4px 8px}}</style>\
         </head><body><h1>CGSim dashboard</h1><p>simulated time: {time_s:.1} s</p>\
         <table><tr><th>site</th><th>cores</th><th>busy</th><th>queued</th><th>running</th><th>finished</th><th>interrupted</th><th>checkpoints</th><th>repairs</th><th>node pressure</th><th>jobs</th></tr>\n{rows}</table></body></html>"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panels() -> Vec<SitePanel> {
        vec![
            SitePanel {
                site: "CERN".into(),
                total_cores: 2000,
                busy_cores: 1500,
                queued_jobs: 12,
                running_jobs: 200,
                finished_jobs: 340,
                interrupted_jobs: 7,
                checkpoints: 4,
                repairs: 3,
                up: true,
                running_sample: vec![(6466065355, 8), (6466065356, 1)],
            },
            SitePanel {
                site: "BNL".into(),
                total_cores: 1000,
                busy_cores: 0,
                queued_jobs: 0,
                running_jobs: 0,
                finished_jobs: 10,
                interrupted_jobs: 0,
                checkpoints: 0,
                repairs: 0,
                up: false,
                running_sample: vec![],
            },
        ]
    }

    #[test]
    fn pressure_is_bounded() {
        let p = panels();
        assert!((p[0].pressure() - 0.75).abs() < 1e-12);
        assert_eq!(p[1].pressure(), 0.0);
        let zero = SitePanel {
            site: "X".into(),
            total_cores: 0,
            busy_cores: 0,
            queued_jobs: 0,
            running_jobs: 0,
            finished_jobs: 0,
            interrupted_jobs: 0,
            checkpoints: 0,
            repairs: 0,
            up: true,
            running_sample: vec![],
        };
        assert_eq!(zero.pressure(), 0.0);
    }

    #[test]
    fn ascii_dashboard_lists_every_site() {
        let text = ascii_dashboard(1234.0, &panels());
        assert!(text.contains("CERN"));
        assert!(text.contains("BNL"));
        assert!(text.contains("75%"));
        assert!(text.contains("intr"));
        assert!(text.contains("ckpt"));
        assert!(text.contains("rep"));
        assert!(text.contains("DOWN"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn html_dashboard_is_self_contained() {
        let html = html_dashboard(60.0, &panels());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("6466065355"));
        assert!(html.contains("CERN"));
        assert!(html.contains("<th>interrupted</th>"));
        assert!(html.contains("<th>checkpoints</th>"));
        assert!(html.contains("<th>repairs</th>"));
        assert!(html.contains("BNL <b>(down)</b>"));
        assert!(
            !html.contains("http://"),
            "must not reference external resources"
        );
    }
}
