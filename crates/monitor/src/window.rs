//! Bounded-memory windowed metrics.
//!
//! The event-level dataset grows with every transition, which is exactly
//! right for offline analysis but wrong for long-horizon monitoring: a
//! multi-month scenario would hold millions of rows just to answer "what was
//! the finish rate around hour 400?". The [`WindowedAggregator`] keeps a
//! ring of per-window summaries instead — each window covers a fixed span of
//! simulated time and records the transition activity inside it plus the
//! cumulative site/grid counters at the moment it closed, so rates are a
//! subtraction away. Memory is bounded by the ring capacity no matter how
//! long the simulation runs; when the ring is full the *oldest* window is
//! dropped (and counted), never the newest.
//!
//! Windows close lazily: a window is sealed by the first observation at or
//! past its end, carrying the cumulative counters as of that observation.
//! Everything is driven by simulated time, so windowed output is as
//! deterministic as the event dataset itself.

use std::collections::VecDeque;

use cgsim_workload::JobState;
use serde::{Deserialize, Serialize};

use crate::collector::{GridCounters, SiteCounters};

/// Summary of one closed time window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowSnapshot {
    /// Window ordinal: the window covers `[index * width_s, (index+1) * width_s)`.
    pub index: u64,
    /// Window start, in simulated seconds.
    pub start_s: f64,
    /// Job state transitions observed inside the window.
    pub transitions: u64,
    /// Dispatch decisions (transitions to `Assigned`) inside the window.
    pub assigned: u64,
    /// Jobs finished inside the window.
    pub finished: u64,
    /// Jobs failed inside the window.
    pub failed: u64,
    /// Cumulative grid counters when the window closed.
    pub grid: GridCounters,
    /// Cumulative per-site counters when the window closed (same order as
    /// the collector's site list).
    pub sites: Vec<SiteCounters>,
}

/// A fixed-capacity ring of windowed summaries.
#[derive(Debug, Clone)]
pub struct WindowedAggregator {
    width_s: f64,
    capacity: usize,
    current: Option<WindowSnapshot>,
    closed: VecDeque<WindowSnapshot>,
    dropped: u64,
}

impl WindowedAggregator {
    /// Creates an aggregator with windows of `width_s` simulated seconds,
    /// retaining at most `capacity` closed windows (both clamped to sane
    /// minima).
    pub fn new(width_s: f64, capacity: usize) -> Self {
        WindowedAggregator {
            width_s: if width_s > 0.0 { width_s } else { 1.0 },
            capacity: capacity.max(1),
            current: None,
            closed: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Window width in simulated seconds.
    pub fn width_s(&self) -> f64 {
        self.width_s
    }

    /// Feeds one job state transition. `grid` and `sites` are the *cumulative*
    /// counters as of this observation; they seal any window the observation
    /// has moved past.
    pub fn observe(
        &mut self,
        time_s: f64,
        state: JobState,
        grid: &GridCounters,
        sites: &[SiteCounters],
    ) {
        let index = (time_s / self.width_s).floor().max(0.0) as u64;
        match &self.current {
            Some(window) if window.index == index => {}
            _ => self.roll_to(index, grid, sites),
        }
        let window = self.current.as_mut().expect("roll_to leaves a window open");
        window.transitions += 1;
        match state {
            JobState::Assigned => window.assigned += 1,
            JobState::Finished => window.finished += 1,
            JobState::Failed => window.failed += 1,
            _ => {}
        }
    }

    /// Seals the still-open window (if any) with the final cumulative
    /// counters. Call once when the simulation ends.
    pub fn finish(&mut self, grid: &GridCounters, sites: &[SiteCounters]) {
        if let Some(mut window) = self.current.take() {
            window.grid = *grid;
            window.sites = sites.to_vec();
            self.push_closed(window);
        }
    }

    /// Closed windows, oldest first (at most `capacity` of them).
    pub fn windows(&self) -> impl Iterator<Item = &WindowSnapshot> {
        self.closed.iter()
    }

    /// Number of closed windows currently retained.
    pub fn len(&self) -> usize {
        self.closed.len()
    }

    /// True when no window has closed yet.
    pub fn is_empty(&self) -> bool {
        self.closed.is_empty()
    }

    /// Windows evicted from the ring to stay within capacity. Non-zero means
    /// the retained windows are the *most recent* ones, not the full history.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exports the retained windows as CSV (see [`windows_csv`]).
    pub fn to_csv(&self) -> String {
        windows_csv(self.closed.iter())
    }

    /// Seals every window older than `index` and opens `index`. Windows with
    /// no observations at all are skipped rather than materialised, so sparse
    /// horizons do not fill the ring with empty rows.
    fn roll_to(&mut self, index: u64, grid: &GridCounters, sites: &[SiteCounters]) {
        if let Some(mut window) = self.current.take() {
            window.grid = *grid;
            window.sites = sites.to_vec();
            self.push_closed(window);
        }
        self.current = Some(WindowSnapshot {
            index,
            start_s: index as f64 * self.width_s,
            transitions: 0,
            assigned: 0,
            finished: 0,
            failed: 0,
            grid: GridCounters::default(),
            sites: Vec::new(),
        });
    }

    fn push_closed(&mut self, window: WindowSnapshot) {
        if self.closed.len() >= self.capacity {
            self.closed.pop_front();
            self.dropped += 1;
        }
        self.closed.push_back(window);
    }
}

/// Renders windows as CSV: one row per closed window, with in-window
/// activity and the cumulative finish/interruption/checkpoint counters at
/// close.
pub fn windows_csv<'a>(windows: impl IntoIterator<Item = &'a WindowSnapshot>) -> String {
    let mut out = String::from(
        "window,start_s,transitions,assigned,finished,failed,\
         cum_finished,cum_interrupted,cum_checkpoints\n",
    );
    for w in windows {
        let cum_finished: u64 = w.sites.iter().map(|s| s.finished).sum();
        let cum_interrupted: u64 = w.sites.iter().map(|s| s.interrupted).sum();
        out.push_str(&format!(
            "{},{:.3},{},{},{},{},{},{},{}\n",
            w.index,
            w.start_s,
            w.transitions,
            w.assigned,
            w.finished,
            w.failed,
            cum_finished,
            cum_interrupted,
            w.grid.checkpoints_written,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observe_at(agg: &mut WindowedAggregator, time_s: f64, state: JobState, finished: u64) {
        let sites = vec![SiteCounters {
            finished,
            ..SiteCounters::default()
        }];
        agg.observe(time_s, state, &GridCounters::default(), &sites);
    }

    #[test]
    fn observations_land_in_their_windows() {
        let mut agg = WindowedAggregator::new(100.0, 16);
        observe_at(&mut agg, 10.0, JobState::Assigned, 0);
        observe_at(&mut agg, 90.0, JobState::Finished, 1);
        observe_at(&mut agg, 150.0, JobState::Finished, 2);
        assert_eq!(agg.len(), 1, "first window sealed by the 150s observation");
        let first = agg.windows().next().unwrap();
        assert_eq!((first.index, first.transitions), (0, 2));
        assert_eq!((first.assigned, first.finished), (1, 1));
        // Sealed with the counters of the sealing observation.
        assert_eq!(first.sites[0].finished, 2);

        agg.finish(&GridCounters::default(), &[SiteCounters::default()]);
        assert_eq!(agg.len(), 2);
        assert_eq!(agg.windows().last().unwrap().index, 1);
    }

    #[test]
    fn empty_windows_are_skipped() {
        let mut agg = WindowedAggregator::new(10.0, 16);
        observe_at(&mut agg, 5.0, JobState::Running, 0);
        observe_at(&mut agg, 995.0, JobState::Running, 0);
        agg.finish(&GridCounters::default(), &[]);
        let indices: Vec<u64> = agg.windows().map(|w| w.index).collect();
        assert_eq!(indices, vec![0, 99], "97 empty windows never materialised");
    }

    #[test]
    fn ring_drops_oldest_windows() {
        let mut agg = WindowedAggregator::new(1.0, 3);
        for i in 0..10 {
            observe_at(&mut agg, i as f64 + 0.5, JobState::Running, i);
        }
        agg.finish(&GridCounters::default(), &[]);
        assert_eq!(agg.len(), 3);
        assert_eq!(agg.dropped(), 7);
        let indices: Vec<u64> = agg.windows().map(|w| w.index).collect();
        assert_eq!(indices, vec![7, 8, 9], "most recent windows survive");
    }

    #[test]
    fn csv_has_one_row_per_window() {
        let mut agg = WindowedAggregator::new(60.0, 8);
        observe_at(&mut agg, 30.0, JobState::Finished, 1);
        observe_at(&mut agg, 70.0, JobState::Failed, 1);
        agg.finish(&GridCounters::default(), &[SiteCounters::default()]);
        let csv = agg.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("window,start_s,"));
        assert!(csv.contains("\n0,0.000,1,0,1,0,"));
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let agg = WindowedAggregator::new(0.0, 0);
        assert!(agg.width_s() > 0.0);
        let mut agg = WindowedAggregator::new(-5.0, 0);
        observe_at(&mut agg, 0.0, JobState::Running, 0);
        observe_at(&mut agg, 100.0, JobState::Running, 0);
        agg.finish(&GridCounters::default(), &[]);
        assert_eq!(agg.len(), 1, "capacity clamps to one");
    }
}
