//! The monitoring collector fed by the simulation core.
//!
//! The collector receives every job state transition together with the
//! concurrent state of the concerned site, maintains cumulative per-site
//! counters, and appends one [`EventRecord`] per transition — the dual-level
//! (job + site) tracking described in §4.3.2. It can be disabled entirely for
//! maximum simulation speed, or thinned with a sampling stride for very large
//! runs; the monitoring-overhead benchmark quantifies the cost.

use cgsim_workload::{JobId, JobState};
use serde::{Deserialize, Serialize};

use crate::event::{EventRecord, JobOutcome};
use crate::window::WindowedAggregator;

/// Collector configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitoringConfig {
    /// Whether event-level records are collected at all.
    pub enabled: bool,
    /// Keep one out of every `sample_stride` event records (1 = keep all).
    pub sample_stride: u64,
    /// Upper bound on retained event records (0 = unbounded, the default).
    /// When set, the dataset becomes a ring: once the bound is exceeded the
    /// *oldest* records are discarded, [`MonitoringCollector::events`] holds
    /// the most recent tail, and [`MonitoringCollector::events_dropped`]
    /// counts the truncation. Event ids keep counting from the start of the
    /// run, so a dropped prefix is visible in the data as well.
    #[serde(default)]
    pub max_events: u64,
    /// Width of the windowed-metrics windows in simulated seconds
    /// (0 = windowed metrics off, the default).
    #[serde(default)]
    pub window_s: f64,
    /// Closed windows retained by the windowed aggregator (a ring: the
    /// oldest windows are dropped beyond this).
    #[serde(default = "default_max_windows")]
    pub max_windows: usize,
}

fn default_max_windows() -> usize {
    512
}

impl Default for MonitoringConfig {
    fn default() -> Self {
        MonitoringConfig {
            enabled: true,
            sample_stride: 1,
            max_events: 0,
            window_s: 0.0,
            max_windows: default_max_windows(),
        }
    }
}

impl MonitoringConfig {
    /// A configuration with monitoring switched off.
    pub fn disabled() -> Self {
        MonitoringConfig {
            enabled: false,
            ..MonitoringConfig::default()
        }
    }

    /// A configuration with windowed metrics on (windows of `window_s`
    /// simulated seconds).
    pub fn windowed(window_s: f64) -> Self {
        MonitoringConfig {
            window_s,
            ..MonitoringConfig::default()
        }
    }
}

/// Cumulative counters for one site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SiteCounters {
    /// Jobs dispatched to the site so far.
    pub assigned: u64,
    /// Jobs finished at the site so far.
    pub finished: u64,
    /// Jobs failed at the site so far.
    pub failed: u64,
    /// Jobs killed mid-flight at the site by fault injection (outages,
    /// node loss, targeted kills).
    pub interrupted: u64,
    /// Checkpoints durably written by jobs executing at the site.
    pub checkpoints: u64,
    /// Re-replication repair transfers completed *into* the site (the site
    /// received a fresh replica from the repair planner).
    #[serde(default)]
    pub repairs: u64,
}

/// Grid-level (main-server) counters not attributable to any single site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GridCounters {
    /// Allocation-policy decisions referencing a site outside the platform
    /// (a buggy plugin returning an out-of-range `SiteId`). The concerned
    /// jobs are parked on the pending list; without this counter such a
    /// plugin is indistinguishable from an overloaded grid.
    pub invalid_policy_decisions: u64,
    /// Whole-site outages applied by fault injection (up → down
    /// transitions; overlapping outage processes count once).
    pub site_outages: u64,
    /// Partial node-loss events applied by fault injection.
    pub node_losses: u64,
    /// Link-degradation events applied by fault injection.
    pub link_degradations: u64,
    /// Jobs killed mid-flight by fault injection, across all sites.
    pub job_interruptions: u64,
    /// Fault-interrupted jobs resubmitted for another attempt.
    pub fault_retries: u64,
    /// Storage-media losses applied by fault injection (data loss at a site
    /// without an outage).
    pub disk_losses: u64,
    /// Checkpoints durably written across the grid.
    pub checkpoints_written: u64,
    /// Bytes of checkpoint state durably written.
    pub checkpoint_bytes: u64,
    /// Resumed attempts that started from a durable checkpoint instead of
    /// from scratch.
    pub checkpoint_restores: u64,
    /// Durable checkpoints invalidated by site outages or disk losses.
    pub checkpoints_lost: u64,
    /// Execution seconds *not* recomputed thanks to checkpoint restores
    /// (work already done before the restored-from checkpoint).
    pub work_saved_s: f64,
    /// Execution seconds discarded by fault interruptions (progress past the
    /// last durable checkpoint at the moment of the kill). With checkpointing
    /// disabled this is the full progress of every killed attempt.
    pub work_lost_s: f64,
    /// Re-replication repair transfers admitted by the repair planner.
    #[serde(default)]
    pub repairs_started: u64,
    /// Repair transfers that completed and (deficit permitting) landed a
    /// fresh replica.
    #[serde(default)]
    pub repairs_completed: u64,
    /// Repair transfers cancelled mid-flight (an endpoint died, or the
    /// workload completed first).
    #[serde(default)]
    pub repairs_cancelled: u64,
    /// Datasets whose repair-retry budget ran out (graceful degradation:
    /// the planner stops trying rather than livelock).
    #[serde(default)]
    pub repairs_abandoned: u64,
    /// Bytes carried by completed repair transfers.
    #[serde(default)]
    pub repair_bytes: u64,
    /// Segment boundaries where a job stalled because its previous
    /// asynchronous checkpoint write was still in flight.
    #[serde(default)]
    pub ckpt_stalls: u64,
    /// Asynchronous checkpoint writes admitted concurrently with the next
    /// execution segment (the overlap actually happening).
    #[serde(default)]
    pub ckpt_overlapped: u64,
    /// Bytes actually put on the wire by checkpoint writes — equals
    /// `checkpoint_bytes` for full-image shipping, less once incremental
    /// (`delta_bytes_per_s`) shipping kicks in.
    #[serde(default)]
    pub ckpt_bytes_shipped: u64,
}

/// Counters of a deterministic scenario-response cache (the memoisation
/// layer of `cgsim-core`'s `ScenarioEngine`). Because every simulation is
/// bit-for-bit reproducible, a cached response is indistinguishable from a
/// fresh run; these counters are how operators see that short-circuiting
/// happen (and size the cache: a high eviction rate means the working set of
/// distinct what-if queries exceeds the configured capacity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheCounters {
    /// Requests answered from the cache without running a simulation
    /// (including repeats *within* one batch, which share the first
    /// occurrence's single run).
    pub hits: u64,
    /// Requests that required a simulation run.
    pub misses: u64,
    /// Cached responses discarded to make room for newer ones.
    pub evictions: u64,
    /// Responses currently resident in the cache.
    pub entries: u64,
}

/// The monitoring collector.
#[derive(Debug, Clone)]
pub struct MonitoringCollector {
    config: MonitoringConfig,
    site_names: Vec<String>,
    counters: Vec<SiteCounters>,
    grid_counters: GridCounters,
    events: Vec<EventRecord>,
    outcomes: Vec<JobOutcome>,
    next_event_id: u64,
    transitions_seen: u64,
    events_dropped: u64,
    windows: Option<WindowedAggregator>,
}

impl MonitoringCollector {
    /// Creates a collector for the given sites.
    pub fn new(site_names: Vec<String>, config: MonitoringConfig) -> Self {
        let counters = vec![SiteCounters::default(); site_names.len()];
        let windows = (config.window_s > 0.0)
            .then(|| WindowedAggregator::new(config.window_s, config.max_windows));
        MonitoringCollector {
            config,
            site_names,
            counters,
            grid_counters: GridCounters::default(),
            events: Vec::new(),
            outcomes: Vec::new(),
            next_event_id: 0,
            transitions_seen: 0,
            events_dropped: 0,
            windows,
        }
    }

    /// Records an allocation-policy decision that referenced a site outside
    /// the platform (the job is parked, not lost — but the defect must show
    /// up in monitoring rather than masquerade as grid congestion).
    pub fn record_invalid_decision(&mut self) {
        self.grid_counters.invalid_policy_decisions += 1;
    }

    /// Grid-level counters (main-server anomalies).
    pub fn grid_counters(&self) -> GridCounters {
        self.grid_counters
    }

    /// Records a whole-site outage (an up → down transition).
    pub fn record_site_outage(&mut self) {
        self.grid_counters.site_outages += 1;
    }

    /// Records a partial node-loss event.
    pub fn record_node_loss(&mut self) {
        self.grid_counters.node_losses += 1;
    }

    /// Records a link-degradation event.
    pub fn record_link_degradation(&mut self) {
        self.grid_counters.link_degradations += 1;
    }

    /// Records a job killed mid-flight by fault injection at the given site.
    pub fn record_interruption(&mut self, site_index: usize) {
        self.grid_counters.job_interruptions += 1;
        if let Some(counters) = self.counters.get_mut(site_index) {
            counters.interrupted += 1;
        }
    }

    /// Records the resubmission of a fault-interrupted job.
    pub fn record_fault_retry(&mut self) {
        self.grid_counters.fault_retries += 1;
    }

    /// Records a storage-media loss at a site (data gone, site still up).
    pub fn record_disk_loss(&mut self) {
        self.grid_counters.disk_losses += 1;
    }

    /// Records a durable checkpoint of `bytes` written by a job executing at
    /// the given site.
    pub fn record_checkpoint_written(&mut self, site_index: usize, bytes: u64) {
        self.grid_counters.checkpoints_written += 1;
        self.grid_counters.checkpoint_bytes += bytes;
        if let Some(counters) = self.counters.get_mut(site_index) {
            counters.checkpoints += 1;
        }
    }

    /// Records an execution attempt resumed from a durable checkpoint,
    /// saving `work_saved_s` seconds of recomputation.
    pub fn record_checkpoint_restore(&mut self, work_saved_s: f64) {
        self.grid_counters.checkpoint_restores += 1;
        self.grid_counters.work_saved_s += work_saved_s;
    }

    /// Records `count` durable checkpoints invalidated by a site outage or a
    /// disk loss.
    pub fn record_checkpoints_lost(&mut self, count: u64) {
        self.grid_counters.checkpoints_lost += count;
    }

    /// Records execution progress discarded by a fault interruption.
    pub fn record_work_lost(&mut self, work_lost_s: f64) {
        self.grid_counters.work_lost_s += work_lost_s;
    }

    /// Records the admission of a re-replication repair transfer.
    pub fn record_repair_started(&mut self) {
        self.grid_counters.repairs_started += 1;
    }

    /// Records a completed repair transfer of `bytes` into the given site.
    pub fn record_repair_completed(&mut self, site_index: usize, bytes: u64) {
        self.grid_counters.repairs_completed += 1;
        self.grid_counters.repair_bytes += bytes;
        if let Some(counters) = self.counters.get_mut(site_index) {
            counters.repairs += 1;
        }
    }

    /// Records a repair transfer cancelled mid-flight.
    pub fn record_repair_cancelled(&mut self) {
        self.grid_counters.repairs_cancelled += 1;
    }

    /// Records a dataset abandoned by the repair planner (retry budget
    /// exhausted).
    pub fn record_repair_abandoned(&mut self) {
        self.grid_counters.repairs_abandoned += 1;
    }

    /// Records a job stalling at a segment boundary on its still-draining
    /// asynchronous checkpoint write.
    pub fn record_ckpt_stall(&mut self) {
        self.grid_counters.ckpt_stalls += 1;
    }

    /// Records an asynchronous checkpoint write overlapping the next
    /// execution segment.
    pub fn record_ckpt_overlap(&mut self) {
        self.grid_counters.ckpt_overlapped += 1;
    }

    /// Records `bytes` put on the wire by a checkpoint write (the full image,
    /// or just the incremental delta).
    pub fn record_ckpt_shipped(&mut self, bytes: u64) {
        self.grid_counters.ckpt_bytes_shipped += bytes;
    }

    /// Records a job state transition at a site (`site_index` indexes the
    /// site list given at construction; `None` marks main-server events).
    #[allow(clippy::too_many_arguments)]
    pub fn record_transition(
        &mut self,
        time_s: f64,
        job: JobId,
        state: JobState,
        site_index: Option<usize>,
        available_cores: u64,
        site_queued: u64,
    ) {
        // Counters are always maintained (cheap); event rows obey the config.
        if let Some(idx) = site_index {
            match state {
                JobState::Assigned => self.counters[idx].assigned += 1,
                JobState::Finished => self.counters[idx].finished += 1,
                JobState::Failed => self.counters[idx].failed += 1,
                _ => {}
            }
        }
        self.transitions_seen += 1;
        if let Some(windows) = &mut self.windows {
            windows.observe(time_s, state, &self.grid_counters, &self.counters);
        }
        if !self.config.enabled {
            return;
        }
        if !self
            .transitions_seen
            .is_multiple_of(self.config.sample_stride.max(1))
        {
            return;
        }
        let event_id = self.next_event_id;
        self.next_event_id += 1;
        let (site, assigned, finished) = match site_index {
            Some(idx) => (
                self.site_names[idx].clone(),
                self.counters[idx].assigned,
                self.counters[idx].finished,
            ),
            None => (String::new(), 0, 0),
        };
        self.events.push(EventRecord {
            event_id,
            time_s,
            job_id: job,
            state,
            site,
            available_cores,
            pending_jobs: site_queued,
            assigned_jobs: assigned,
            finished_jobs: finished,
        });
        // Ring-buffer mode: let the vector overshoot to 2× the bound, then
        // drain the front in one move — amortised O(1) per event while
        // `events()` stays a contiguous slice.
        let cap = self.config.max_events as usize;
        if cap > 0 && self.events.len() >= cap * 2 {
            let drop = self.events.len() - cap;
            self.events.drain(..drop);
            self.events_dropped += drop as u64;
        }
    }

    /// Records the final outcome of a job.
    pub fn record_outcome(&mut self, outcome: JobOutcome) {
        self.outcomes.push(outcome);
    }

    /// Event-level dataset collected so far. With
    /// [`MonitoringConfig::max_events`] set this is the most recent tail of
    /// the dataset, not the full history — check
    /// [`MonitoringCollector::events_dropped`].
    pub fn events(&self) -> &[EventRecord] {
        &self.events
    }

    /// Event records discarded by the `max_events` ring (0 when unbounded or
    /// never exceeded).
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// The windowed-metrics aggregator (`None` unless
    /// [`MonitoringConfig::window_s`] enabled it). The final partial window
    /// stays open until [`MonitoringCollector::finish_windows`].
    pub fn windows(&self) -> Option<&WindowedAggregator> {
        self.windows.as_ref()
    }

    /// Seals the still-open metrics window with the final counters. Call
    /// once when the simulation ends.
    pub fn finish_windows(&mut self) {
        if let Some(windows) = &mut self.windows {
            windows.finish(&self.grid_counters, &self.counters);
        }
    }

    /// Per-job outcomes collected so far.
    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// Consumes the collector, returning events and outcomes.
    pub fn into_parts(self) -> (Vec<EventRecord>, Vec<JobOutcome>) {
        (self.events, self.outcomes)
    }

    /// Cumulative counters of a site.
    pub fn site_counters(&self, site_index: usize) -> SiteCounters {
        self.counters[site_index]
    }

    /// Total number of transitions observed (including unsampled ones).
    pub fn transitions_seen(&self) -> u64 {
        self.transitions_seen
    }

    /// Exports the event-level dataset as CSV.
    pub fn events_csv(&self) -> String {
        let mut out = String::from(EventRecord::CSV_HEADER);
        out.push('\n');
        for e in &self.events {
            out.push_str(&e.to_csv_row());
            out.push('\n');
        }
        out
    }

    /// Exports the per-job outcomes as CSV.
    pub fn outcomes_csv(&self) -> String {
        let mut out = String::from(JobOutcome::CSV_HEADER);
        out.push('\n');
        for o in &self.outcomes {
            out.push_str(&o.to_csv_row());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_workload::JobKind;

    fn collector() -> MonitoringCollector {
        MonitoringCollector::new(
            vec!["CERN".into(), "BNL".into()],
            MonitoringConfig::default(),
        )
    }

    #[test]
    fn transitions_become_event_records() {
        let mut c = collector();
        c.record_transition(1.0, JobId(1), JobState::Assigned, Some(0), 100, 0);
        c.record_transition(2.0, JobId(1), JobState::Running, Some(0), 99, 0);
        c.record_transition(5.0, JobId(1), JobState::Finished, Some(0), 100, 0);
        assert_eq!(c.events().len(), 3);
        assert_eq!(c.site_counters(0).assigned, 1);
        assert_eq!(c.site_counters(0).finished, 1);
        assert_eq!(c.site_counters(1), SiteCounters::default());
        let last = &c.events()[2];
        assert_eq!(last.finished_jobs, 1);
        assert_eq!(last.site, "CERN");
        assert_eq!(last.event_id, 2);
    }

    #[test]
    fn disabled_collector_keeps_counters_but_no_events() {
        let mut c = MonitoringCollector::new(vec!["X".into()], MonitoringConfig::disabled());
        c.record_transition(1.0, JobId(1), JobState::Finished, Some(0), 10, 0);
        assert!(c.events().is_empty());
        assert_eq!(c.site_counters(0).finished, 1);
        assert_eq!(c.transitions_seen(), 1);
    }

    #[test]
    fn sampling_stride_thins_events() {
        let mut c = MonitoringCollector::new(
            vec!["X".into()],
            MonitoringConfig {
                sample_stride: 10,
                ..MonitoringConfig::default()
            },
        );
        for i in 0..100 {
            c.record_transition(i as f64, JobId(i), JobState::Running, Some(0), 5, 0);
        }
        assert_eq!(c.events().len(), 10);
        assert_eq!(c.transitions_seen(), 100);
    }

    #[test]
    fn max_events_ring_keeps_the_recent_tail() {
        let mut c = MonitoringCollector::new(
            vec!["X".into()],
            MonitoringConfig {
                max_events: 10,
                ..MonitoringConfig::default()
            },
        );
        for i in 0..95 {
            c.record_transition(i as f64, JobId(i), JobState::Running, Some(0), 5, 0);
        }
        assert!(c.events().len() < 20, "bounded at twice the cap");
        assert_eq!(c.events_dropped() + c.events().len() as u64, 95);
        // The retained rows are the newest, with their original ids.
        assert_eq!(c.events().last().unwrap().event_id, 94);
        let first = c.events().first().unwrap().event_id;
        assert_eq!(first, c.events_dropped());
    }

    #[test]
    fn windowed_metrics_follow_the_config() {
        let mut c = MonitoringCollector::new(vec!["X".into()], MonitoringConfig::windowed(100.0));
        c.record_transition(10.0, JobId(1), JobState::Assigned, Some(0), 5, 0);
        c.record_transition(50.0, JobId(1), JobState::Finished, Some(0), 5, 0);
        c.record_transition(150.0, JobId(2), JobState::Assigned, Some(0), 5, 0);
        c.finish_windows();
        let windows: Vec<_> = c.windows().unwrap().windows().collect();
        assert_eq!(windows.len(), 2);
        assert_eq!((windows[0].transitions, windows[0].finished), (2, 1));
        assert_eq!(windows[0].sites[0].finished, 1, "cumulative at close");
        assert_eq!(windows[1].assigned, 1);
        // Off by default.
        assert!(collector().windows().is_none());
    }

    #[test]
    fn invalid_decisions_accumulate_in_grid_counters() {
        let mut c = collector();
        assert_eq!(c.grid_counters(), GridCounters::default());
        c.record_invalid_decision();
        c.record_invalid_decision();
        assert_eq!(c.grid_counters().invalid_policy_decisions, 2);
        // Site counters are untouched by grid-level anomalies.
        assert_eq!(c.site_counters(0), SiteCounters::default());
        assert_eq!(c.site_counters(1), SiteCounters::default());
    }

    #[test]
    fn fault_counters_accumulate() {
        let mut c = collector();
        c.record_site_outage();
        c.record_node_loss();
        c.record_link_degradation();
        c.record_link_degradation();
        c.record_interruption(1);
        c.record_interruption(1);
        c.record_interruption(0);
        c.record_fault_retry();
        let grid = c.grid_counters();
        assert_eq!(grid.site_outages, 1);
        assert_eq!(grid.node_losses, 1);
        assert_eq!(grid.link_degradations, 2);
        assert_eq!(grid.job_interruptions, 3);
        assert_eq!(grid.fault_retries, 1);
        assert_eq!(c.site_counters(1).interrupted, 2);
        assert_eq!(c.site_counters(0).interrupted, 1);
        // Interruptions are not terminal outcomes.
        assert_eq!(c.site_counters(1).failed, 0);
    }

    #[test]
    fn checkpoint_counters_accumulate() {
        let mut c = collector();
        c.record_checkpoint_written(0, 1_000);
        c.record_checkpoint_written(0, 2_000);
        c.record_checkpoint_written(1, 500);
        c.record_checkpoint_restore(120.0);
        c.record_checkpoints_lost(2);
        c.record_work_lost(30.0);
        c.record_work_lost(15.0);
        c.record_disk_loss();
        let grid = c.grid_counters();
        assert_eq!(grid.checkpoints_written, 3);
        assert_eq!(grid.checkpoint_bytes, 3_500);
        assert_eq!(grid.checkpoint_restores, 1);
        assert_eq!(grid.checkpoints_lost, 2);
        assert_eq!(grid.disk_losses, 1);
        assert!((grid.work_saved_s - 120.0).abs() < 1e-12);
        assert!((grid.work_lost_s - 45.0).abs() < 1e-12);
        assert_eq!(c.site_counters(0).checkpoints, 2);
        assert_eq!(c.site_counters(1).checkpoints, 1);
    }

    #[test]
    fn repair_and_async_checkpoint_counters_accumulate() {
        let mut c = collector();
        c.record_repair_started();
        c.record_repair_started();
        c.record_repair_started();
        c.record_repair_completed(1, 4_000);
        c.record_repair_completed(1, 6_000);
        c.record_repair_cancelled();
        c.record_repair_abandoned();
        c.record_ckpt_stall();
        c.record_ckpt_overlap();
        c.record_ckpt_overlap();
        c.record_ckpt_shipped(700);
        c.record_ckpt_shipped(300);
        let grid = c.grid_counters();
        assert_eq!(grid.repairs_started, 3);
        assert_eq!(grid.repairs_completed, 2);
        assert_eq!(grid.repairs_cancelled, 1);
        assert_eq!(grid.repairs_abandoned, 1);
        assert_eq!(grid.repair_bytes, 10_000);
        assert_eq!(grid.ckpt_stalls, 1);
        assert_eq!(grid.ckpt_overlapped, 2);
        assert_eq!(grid.ckpt_bytes_shipped, 1_000);
        assert_eq!(c.site_counters(1).repairs, 2);
        assert_eq!(c.site_counters(0).repairs, 0);
    }

    #[test]
    fn main_server_events_have_empty_site() {
        let mut c = collector();
        c.record_transition(0.5, JobId(9), JobState::Pending, None, 0, 3);
        assert_eq!(c.events()[0].site, "");
        assert_eq!(c.events()[0].pending_jobs, 3);
    }

    #[test]
    fn csv_exports_are_well_formed() {
        let mut c = collector();
        c.record_transition(1.0, JobId(1), JobState::Finished, Some(1), 7, 2);
        c.record_outcome(JobOutcome {
            id: JobId(1),
            kind: JobKind::SingleCore,
            cores: 1,
            work_hs23: 8.0,
            site: "BNL".into(),
            submit_time: 0.0,
            assign_time: 0.1,
            start_time: 0.2,
            end_time: 1.0,
            final_state: JobState::Finished,
            staged_bytes: 10,
            walltime: 0.8,
            queue_time: 0.2,
            hist_walltime: None,
            hist_queue_time: None,
        });
        let events_csv = c.events_csv();
        assert_eq!(events_csv.lines().count(), 2);
        assert!(events_csv.starts_with("event_id,"));
        let outcomes_csv = c.outcomes_csv();
        assert_eq!(outcomes_csv.lines().count(), 2);
        assert!(outcomes_csv.contains("BNL"));
        let (events, outcomes) = c.into_parts();
        assert_eq!(events.len(), 1);
        assert_eq!(outcomes.len(), 1);
    }
}
