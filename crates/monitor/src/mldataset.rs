//! ML-ready dataset export.
//!
//! CGSim "automatically generates an event-level statistics dataset from each
//! run that can be directly used to train machine learning models" (§1); the
//! companion work trains AI surrogate models on exactly this kind of data.
//! This module flattens the event-level records and per-job outcomes into
//! numeric feature rows suitable for supervised training (e.g. predicting
//! walltime or queue time from job and site features).

use cgsim_workload::JobKind;
use serde::{Deserialize, Serialize};

use crate::event::{EventRecord, JobOutcome};

/// One training example: numeric features plus the regression targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlExample {
    /// Job id (kept for joining, not a feature).
    pub job_id: u64,
    /// 1.0 for multi-core jobs, 0.0 for single-core.
    pub is_multicore: f64,
    /// Cores requested.
    pub cores: f64,
    /// Computational requirement in HS23-seconds (the dominant walltime
    /// feature — PanDA records expose the same quantity to the production
    /// surrogate models).
    pub work_hs23: f64,
    /// Bytes staged over the network.
    pub staged_bytes: f64,
    /// Site available-core count at assignment time (0 when unknown).
    pub site_available_cores_at_assign: f64,
    /// Site queue depth at assignment time (0 when unknown).
    pub site_queue_at_assign: f64,
    /// Submission time within the run (s).
    pub submit_time: f64,
    /// Target: simulated queue time (s).
    pub target_queue_time: f64,
    /// Target: simulated walltime (s).
    pub target_walltime: f64,
}

/// Builds ML examples by joining job outcomes with the event-level dataset
/// (the `Assigned` event provides the site-state features).
pub fn build_examples(outcomes: &[JobOutcome], events: &[EventRecord]) -> Vec<MlExample> {
    use std::collections::HashMap;
    let mut assign_state: HashMap<u64, (u64, u64)> = HashMap::new();
    for e in events {
        if e.state == cgsim_workload::JobState::Assigned {
            assign_state.insert(e.job_id.0, (e.available_cores, e.pending_jobs));
        }
    }
    outcomes
        .iter()
        .map(|o| {
            let (avail, queue) = assign_state.get(&o.id.0).copied().unwrap_or((0, 0));
            MlExample {
                job_id: o.id.0,
                is_multicore: if o.kind == JobKind::MultiCore {
                    1.0
                } else {
                    0.0
                },
                cores: o.cores as f64,
                work_hs23: o.work_hs23,
                staged_bytes: o.staged_bytes as f64,
                site_available_cores_at_assign: avail as f64,
                site_queue_at_assign: queue as f64,
                submit_time: o.submit_time,
                target_queue_time: o.queue_time,
                target_walltime: o.walltime,
            }
        })
        .collect()
}

/// CSV header for [`to_csv`].
pub const CSV_HEADER: &str = "job_id,is_multicore,cores,work_hs23,staged_bytes,site_available_cores_at_assign,site_queue_at_assign,submit_time,target_queue_time,target_walltime";

/// Renders examples as CSV (header + one row per example).
pub fn to_csv(examples: &[MlExample]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for e in examples {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{}\n",
            e.job_id,
            e.is_multicore,
            e.cores,
            e.work_hs23,
            e.staged_bytes,
            e.site_available_cores_at_assign,
            e.site_queue_at_assign,
            e.submit_time,
            e.target_queue_time,
            e.target_walltime
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_workload::{JobId, JobState};

    fn outcome(id: u64) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            kind: JobKind::MultiCore,
            cores: 8,
            work_hs23: 68_000.0,
            site: "BNL".into(),
            submit_time: 100.0,
            assign_time: 110.0,
            start_time: 150.0,
            end_time: 1000.0,
            final_state: JobState::Finished,
            staged_bytes: 5_000,
            walltime: 850.0,
            queue_time: 50.0,
            hist_walltime: None,
            hist_queue_time: None,
        }
    }

    fn assign_event(id: u64) -> EventRecord {
        EventRecord {
            event_id: 1,
            time_s: 110.0,
            job_id: JobId(id),
            state: JobState::Assigned,
            site: "BNL".into(),
            available_cores: 420,
            pending_jobs: 7,
            assigned_jobs: 1,
            finished_jobs: 0,
        }
    }

    #[test]
    fn examples_join_outcomes_with_assign_events() {
        let examples = build_examples(&[outcome(9)], &[assign_event(9)]);
        assert_eq!(examples.len(), 1);
        let e = &examples[0];
        assert_eq!(e.job_id, 9);
        assert_eq!(e.is_multicore, 1.0);
        assert_eq!(e.work_hs23, 68_000.0);
        assert_eq!(e.site_available_cores_at_assign, 420.0);
        assert_eq!(e.site_queue_at_assign, 7.0);
        assert_eq!(e.target_walltime, 850.0);
    }

    #[test]
    fn missing_assign_event_defaults_to_zero_features() {
        let examples = build_examples(&[outcome(9)], &[]);
        assert_eq!(examples[0].site_available_cores_at_assign, 0.0);
    }

    #[test]
    fn csv_has_header_and_matching_columns() {
        let examples = build_examples(&[outcome(1), outcome(2)], &[assign_event(1)]);
        let csv = to_csv(&examples);
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1].split(',').count(), CSV_HEADER.split(',').count());
    }
}
