//! Operational metrics computed from per-job outcomes.
//!
//! The paper's introduction lists the metrics operators actually watch:
//! "queue time, CPU efficiency, job failure rate, and throughput, all derived
//! from operational logs and monitoring data". [`MetricsReport`] computes
//! those from the simulated [`JobOutcome`] records, both globally and per
//! site.

use std::collections::BTreeMap;

use cgsim_des::stats::Summary;
use serde::{Deserialize, Serialize};

use crate::event::JobOutcome;

/// Metrics for one site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteMetrics {
    /// Site name.
    pub site: String,
    /// Jobs that finished successfully.
    pub finished_jobs: u64,
    /// Jobs that failed.
    pub failed_jobs: u64,
    /// Failure rate in `[0, 1]`.
    pub failure_rate: f64,
    /// Queue-time distribution (s).
    pub queue_time: Option<Summary>,
    /// Walltime distribution (s).
    pub walltime: Option<Summary>,
    /// Core-seconds of useful work executed at the site.
    pub core_seconds: f64,
    /// Jobs completed per simulated hour.
    pub throughput_per_hour: f64,
}

/// Grid-wide metrics report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Makespan: time from first submission to last completion (s).
    pub makespan_s: f64,
    /// Total jobs simulated.
    pub total_jobs: u64,
    /// Successfully finished jobs.
    pub finished_jobs: u64,
    /// Failed jobs.
    pub failed_jobs: u64,
    /// Global failure rate in `[0, 1]`.
    pub failure_rate: f64,
    /// Global queue-time distribution (s).
    pub queue_time: Option<Summary>,
    /// Global walltime distribution (s).
    pub walltime: Option<Summary>,
    /// Jobs completed per simulated hour.
    pub throughput_per_hour: f64,
    /// Total bytes staged across the WAN.
    pub staged_bytes: u64,
    /// Per-site breakdown, keyed by site name.
    pub per_site: BTreeMap<String, SiteMetrics>,
}

impl MetricsReport {
    /// Computes the report from job outcomes. Returns a neutral report when
    /// no outcomes exist.
    pub fn from_outcomes(outcomes: &[JobOutcome]) -> Self {
        if outcomes.is_empty() {
            return MetricsReport {
                makespan_s: 0.0,
                total_jobs: 0,
                finished_jobs: 0,
                failed_jobs: 0,
                failure_rate: 0.0,
                queue_time: None,
                walltime: None,
                throughput_per_hour: 0.0,
                staged_bytes: 0,
                per_site: BTreeMap::new(),
            };
        }
        let first_submit = outcomes
            .iter()
            .map(|o| o.submit_time)
            .fold(f64::INFINITY, f64::min);
        let last_end = outcomes.iter().map(|o| o.end_time).fold(0.0f64, f64::max);
        let makespan = (last_end - first_submit).max(0.0);
        let finished = outcomes.iter().filter(|o| o.succeeded()).count() as u64;
        let failed = outcomes.len() as u64 - finished;
        let queue_times: Vec<f64> = outcomes.iter().map(|o| o.queue_time).collect();
        let walltimes: Vec<f64> = outcomes.iter().map(|o| o.walltime).collect();
        let staged: u64 = outcomes.iter().map(|o| o.staged_bytes).sum();

        let mut per_site_outcomes: BTreeMap<String, Vec<&JobOutcome>> = BTreeMap::new();
        for o in outcomes {
            per_site_outcomes.entry(o.site.clone()).or_default().push(o);
        }
        let per_site = per_site_outcomes
            .into_iter()
            .map(|(site, jobs)| {
                let fin = jobs.iter().filter(|o| o.succeeded()).count() as u64;
                let fail = jobs.len() as u64 - fin;
                let qt: Vec<f64> = jobs.iter().map(|o| o.queue_time).collect();
                let wt: Vec<f64> = jobs.iter().map(|o| o.walltime).collect();
                let core_seconds: f64 = jobs.iter().map(|o| o.core_seconds()).sum();
                (
                    site.clone(),
                    SiteMetrics {
                        site,
                        finished_jobs: fin,
                        failed_jobs: fail,
                        failure_rate: fail as f64 / jobs.len() as f64,
                        queue_time: Summary::of(&qt),
                        walltime: Summary::of(&wt),
                        core_seconds,
                        throughput_per_hour: if makespan > 0.0 {
                            fin as f64 / (makespan / 3600.0)
                        } else {
                            0.0
                        },
                    },
                )
            })
            .collect();

        MetricsReport {
            makespan_s: makespan,
            total_jobs: outcomes.len() as u64,
            finished_jobs: finished,
            failed_jobs: failed,
            failure_rate: failed as f64 / outcomes.len() as f64,
            queue_time: Summary::of(&queue_times),
            walltime: Summary::of(&walltimes),
            throughput_per_hour: if makespan > 0.0 {
                finished as f64 / (makespan / 3600.0)
            } else {
                0.0
            },
            staged_bytes: staged,
            per_site,
        }
    }

    /// Average CPU utilisation of the listed capacity over the makespan:
    /// executed core-seconds divided by `total_cores * makespan`.
    pub fn cpu_utilisation(&self, total_cores: u64) -> f64 {
        if self.makespan_s <= 0.0 || total_cores == 0 {
            return 0.0;
        }
        let core_seconds: f64 = self.per_site.values().map(|s| s.core_seconds).sum();
        (core_seconds / (total_cores as f64 * self.makespan_s)).min(1.0)
    }

    /// A short human-readable textual summary.
    pub fn text_summary(&self) -> String {
        format!(
            "jobs: {} (finished {}, failed {}, failure rate {:.1}%)\nmakespan: {:.1} h, throughput: {:.1} jobs/h\nmean queue time: {:.1} s, mean walltime: {:.1} s, staged: {:.2} GB",
            self.total_jobs,
            self.finished_jobs,
            self.failed_jobs,
            self.failure_rate * 100.0,
            self.makespan_s / 3600.0,
            self.throughput_per_hour,
            self.queue_time.as_ref().map(|s| s.mean).unwrap_or(0.0),
            self.walltime.as_ref().map(|s| s.mean).unwrap_or(0.0),
            self.staged_bytes as f64 / 1e9,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_workload::{JobId, JobKind, JobState};

    fn outcome(id: u64, site: &str, submit: f64, end: f64, failed: bool) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            kind: JobKind::SingleCore,
            cores: 2,
            work_hs23: 2.0 * (end - submit),
            site: site.into(),
            submit_time: submit,
            assign_time: submit + 1.0,
            start_time: submit + 10.0,
            end_time: end,
            final_state: if failed {
                JobState::Failed
            } else {
                JobState::Finished
            },
            staged_bytes: 1_000,
            walltime: end - submit - 10.0,
            queue_time: 10.0,
            hist_walltime: None,
            hist_queue_time: None,
        }
    }

    #[test]
    fn empty_outcomes_give_neutral_report() {
        let report = MetricsReport::from_outcomes(&[]);
        assert_eq!(report.total_jobs, 0);
        assert_eq!(report.failure_rate, 0.0);
        assert!(report.per_site.is_empty());
        assert_eq!(report.cpu_utilisation(100), 0.0);
    }

    #[test]
    fn global_and_per_site_metrics() {
        let outcomes = vec![
            outcome(1, "CERN", 0.0, 100.0, false),
            outcome(2, "CERN", 0.0, 200.0, false),
            outcome(3, "BNL", 50.0, 400.0, true),
            outcome(4, "BNL", 10.0, 300.0, false),
        ];
        let report = MetricsReport::from_outcomes(&outcomes);
        assert_eq!(report.total_jobs, 4);
        assert_eq!(report.finished_jobs, 3);
        assert_eq!(report.failed_jobs, 1);
        assert!((report.failure_rate - 0.25).abs() < 1e-12);
        assert_eq!(report.makespan_s, 400.0);
        assert_eq!(report.per_site.len(), 2);
        let bnl = &report.per_site["BNL"];
        assert_eq!(bnl.finished_jobs, 1);
        assert_eq!(bnl.failed_jobs, 1);
        assert!((bnl.failure_rate - 0.5).abs() < 1e-12);
        assert!(report.throughput_per_hour > 0.0);
        assert_eq!(report.staged_bytes, 4_000);
        assert!(report.text_summary().contains("failure rate"));
    }

    #[test]
    fn utilisation_is_bounded() {
        let outcomes = vec![outcome(1, "X", 0.0, 100.0, false)];
        let report = MetricsReport::from_outcomes(&outcomes);
        let u = report.cpu_utilisation(4);
        assert!(u > 0.0 && u <= 1.0);
        assert_eq!(report.cpu_utilisation(0), 0.0);
    }
}
