//! # cgsim-monitor — monitoring, event-level datasets, metrics and dashboards
//!
//! CGSim's output layer "collects and stores results in SQLite databases,
//! supports CSV exports for statistical analysis, and provides a real-time
//! dashboard for monitoring and performance evaluation" (paper §3.1), and
//! §4.3.2 describes the event-level dataset captured at every timestep
//! (Table 1). This crate reproduces that output layer:
//!
//! * [`event`] — the event-level record schema of Table 1 (event id, job id,
//!   state, site, available cores, pending / assigned / finished job counts)
//!   and the per-job outcome record used for metric computation,
//! * [`collector`] — the monitoring collector the simulation core feeds on
//!   every job transition; it maintains per-site counters and the
//!   event-level dataset,
//! * [`metrics`] — queue time, walltime, CPU efficiency, throughput and
//!   failure-rate summaries (the operational metrics listed in §1),
//! * [`store`] — a lightweight named-table store with CSV/JSONL export (the
//!   SQLite substitution; see DESIGN.md),
//! * [`dashboard`] — ASCII and self-contained HTML/SVG renderings of the
//!   per-site node-pressure view of Fig. 5,
//! * [`mldataset`] — flattened, ML-ready feature rows generated from the
//!   event-level dataset (the "automatic dataset generation for ML training"
//!   feature),
//! * [`window`] — bounded-memory windowed metrics: a ring of per-window
//!   site/grid counter snapshots for long-horizon monitoring where the full
//!   event dataset would grow without bound.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod collector;
pub mod dashboard;
pub mod event;
pub mod metrics;
pub mod mldataset;
pub mod store;
pub mod timeseries;
pub mod window;

pub use collector::{
    CacheCounters, GridCounters, MonitoringCollector, MonitoringConfig, SiteCounters,
};
pub use event::{EventRecord, JobOutcome};
pub use metrics::{MetricsReport, SiteMetrics};
pub use store::{TableStore, Value};
pub use window::{windows_csv, WindowSnapshot, WindowedAggregator};
