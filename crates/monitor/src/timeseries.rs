//! Time-series resampling of the event-level dataset.
//!
//! The real-time dashboard and the ML-assisted surrogate models both consume
//! the simulation state as regularly sampled series (e.g. running jobs and
//! node pressure per site per minute) rather than as raw event rows. This
//! module bins the event-level dataset onto a fixed time grid.

use std::collections::BTreeMap;

use cgsim_workload::JobState;
use serde::{Deserialize, Serialize};

use crate::event::EventRecord;

/// One resampled series for one site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteSeries {
    /// Site name.
    pub site: String,
    /// Start time of each bin (seconds).
    pub time_s: Vec<f64>,
    /// Available cores at the last event within (or before) each bin.
    pub available_cores: Vec<u64>,
    /// Site queue depth at the last event within (or before) each bin.
    pub queued_jobs: Vec<u64>,
    /// Cumulative finished jobs at the end of each bin.
    pub finished_jobs: Vec<u64>,
    /// Number of job-state events that fell into each bin.
    pub events_in_bin: Vec<u64>,
}

/// Resamples the event-level dataset onto a fixed grid of `bin_s`-second
/// bins, carrying the last observation forward for state-like quantities.
pub fn resample(events: &[EventRecord], bin_s: f64) -> Vec<SiteSeries> {
    assert!(bin_s > 0.0, "bin width must be positive");
    if events.is_empty() {
        return Vec::new();
    }
    let horizon = events.iter().map(|e| e.time_s).fold(0.0f64, f64::max);
    let bins = (horizon / bin_s).floor() as usize + 1;

    // Group events per site (ignore main-server rows with an empty site).
    let mut per_site: BTreeMap<&str, Vec<&EventRecord>> = BTreeMap::new();
    for e in events {
        if !e.site.is_empty() {
            per_site.entry(e.site.as_str()).or_default().push(e);
        }
    }

    per_site
        .into_iter()
        .map(|(site, site_events)| {
            let mut series = SiteSeries {
                site: site.to_string(),
                time_s: (0..bins).map(|i| i as f64 * bin_s).collect(),
                available_cores: vec![0; bins],
                queued_jobs: vec![0; bins],
                finished_jobs: vec![0; bins],
                events_in_bin: vec![0; bins],
            };
            let mut cursor = 0usize;
            let mut last = (0u64, 0u64, 0u64);
            for bin in 0..bins {
                let bin_end = (bin + 1) as f64 * bin_s;
                while cursor < site_events.len() && site_events[cursor].time_s < bin_end {
                    let e = site_events[cursor];
                    last = (e.available_cores, e.pending_jobs, e.finished_jobs);
                    series.events_in_bin[bin] += 1;
                    cursor += 1;
                }
                series.available_cores[bin] = last.0;
                series.queued_jobs[bin] = last.1;
                series.finished_jobs[bin] = last.2;
            }
            series
        })
        .collect()
}

/// Renders the resampled series as CSV (long format: one row per site per bin).
pub fn to_csv(series: &[SiteSeries]) -> String {
    let mut out =
        String::from("site,time_s,available_cores,queued_jobs,finished_jobs,events_in_bin\n");
    for s in series {
        for i in 0..s.time_s.len() {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                s.site,
                s.time_s[i],
                s.available_cores[i],
                s.queued_jobs[i],
                s.finished_jobs[i],
                s.events_in_bin[i]
            ));
        }
    }
    out
}

/// Counts the job-state transitions per state over the whole event stream
/// (a quick sanity view of the lifecycle funnel).
pub fn state_histogram(events: &[EventRecord]) -> BTreeMap<JobState, u64> {
    let mut histogram = BTreeMap::new();
    for e in events {
        *histogram.entry(e.state).or_insert(0) += 1;
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_workload::JobId;

    fn event(time_s: f64, site: &str, state: JobState, avail: u64, finished: u64) -> EventRecord {
        EventRecord {
            event_id: (time_s * 10.0) as u64,
            time_s,
            job_id: JobId(1),
            state,
            site: site.to_string(),
            available_cores: avail,
            pending_jobs: 1,
            assigned_jobs: finished + 1,
            finished_jobs: finished,
        }
    }

    #[test]
    fn resample_carries_last_observation_forward() {
        let events = vec![
            event(5.0, "A", JobState::Running, 90, 0),
            event(65.0, "A", JobState::Finished, 100, 1),
            event(10.0, "B", JobState::Running, 40, 0),
        ];
        let series = resample(&events, 60.0);
        assert_eq!(series.len(), 2);
        let a = series.iter().find(|s| s.site == "A").unwrap();
        assert_eq!(a.time_s.len(), 2);
        assert_eq!(a.available_cores, vec![90, 100]);
        assert_eq!(a.finished_jobs, vec![0, 1]);
        assert_eq!(a.events_in_bin, vec![1, 1]);
        let b = series.iter().find(|s| s.site == "B").unwrap();
        // B has no events after t=10, so its state is carried forward.
        assert_eq!(b.available_cores, vec![40, 40]);
        assert_eq!(b.events_in_bin, vec![1, 0]);
    }

    #[test]
    fn empty_events_give_empty_series() {
        assert!(resample(&[], 60.0).is_empty());
    }

    #[test]
    fn csv_has_one_row_per_site_per_bin() {
        let events = vec![
            event(5.0, "A", JobState::Running, 90, 0),
            event(125.0, "A", JobState::Finished, 100, 1),
        ];
        let series = resample(&events, 60.0);
        let csv = to_csv(&series);
        // 3 bins x 1 site + header.
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.starts_with("site,time_s"));
    }

    #[test]
    fn state_histogram_counts_transitions() {
        let events = vec![
            event(1.0, "A", JobState::Running, 1, 0),
            event(2.0, "A", JobState::Running, 1, 0),
            event(3.0, "A", JobState::Finished, 1, 1),
        ];
        let histogram = state_histogram(&events);
        assert_eq!(histogram[&JobState::Running], 2);
        assert_eq!(histogram[&JobState::Finished], 1);
        assert!(!histogram.contains_key(&JobState::Failed));
    }

    #[test]
    #[should_panic]
    fn zero_bin_width_is_rejected() {
        resample(&[], 0.0);
    }
}
