//! Lightweight named-table store (the SQLite substitution).
//!
//! CGSim stores run results in SQLite databases and exports CSV for
//! statistical analysis. To keep CGSim-RS dependency-free we substitute an
//! in-memory named-table store with the same role: typed columns, appendable
//! rows, simple filtering, and CSV / JSON-lines persistence. DESIGN.md
//! records the substitution.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// A single cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Integer cell.
    Int(i64),
    /// Floating-point cell.
    Float(f64),
    /// Text cell.
    Text(String),
}

impl Value {
    /// Renders the value for CSV output.
    pub fn to_csv_field(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Float(v) => format!("{v}"),
            Value::Text(v) => {
                if v.contains(',') || v.contains('"') {
                    format!("\"{}\"", v.replace('"', "\"\""))
                } else {
                    v.clone()
                }
            }
        }
    }

    /// The float content, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Text(_) => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

/// One table: a header plus rows.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table {
    /// Column names.
    pub columns: Vec<String>,
    /// Rows; every row has `columns.len()` cells.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table with the given columns.
    pub fn new(columns: &[&str]) -> Self {
        Table {
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row length does not match the column count.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width does not match table schema"
        );
        self.rows.push(row);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Values of a numeric column as f64 (non-numeric cells are skipped).
    pub fn numeric_column(&self, name: &str) -> Vec<f64> {
        let Some(idx) = self.column_index(name) else {
            return Vec::new();
        };
        self.rows.iter().filter_map(|r| r[idx].as_f64()).collect()
    }

    /// Rows for which `predicate` returns true for the value in `column`.
    pub fn filter_rows<'a>(
        &'a self,
        column: &str,
        predicate: impl Fn(&Value) -> bool + 'a,
    ) -> Vec<&'a Vec<Value>> {
        let Some(idx) = self.column_index(column) else {
            return Vec::new();
        };
        self.rows.iter().filter(|r| predicate(&r[idx])).collect()
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            let fields: Vec<String> = row.iter().map(Value::to_csv_field).collect();
            out.push_str(&fields.join(","));
            out.push('\n');
        }
        out
    }
}

/// A named collection of tables (one simulation run's output database).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TableStore {
    tables: BTreeMap<String, Table>,
}

impl TableStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates (or returns the existing) table `name` with the given schema.
    pub fn table(&mut self, name: &str, columns: &[&str]) -> &mut Table {
        self.tables
            .entry(name.to_string())
            .or_insert_with(|| Table::new(columns))
    }

    /// Gets a table by name.
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Writes every table as `<dir>/<name>.csv`.
    pub fn save_csv_dir(&self, dir: impl AsRef<Path>) -> std::io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        for (name, table) in &self.tables {
            let mut file = std::fs::File::create(dir.join(format!("{name}.csv")))?;
            file.write_all(table.to_csv().as_bytes())?;
        }
        Ok(())
    }

    /// Serialises the whole store as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("store serialisation cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new(&["site", "jobs", "mean_walltime"]);
        t.push_row(vec!["CERN".into(), 120u64.into(), 3600.5.into()]);
        t.push_row(vec!["BNL".into(), 80u64.into(), 2800.0.into()]);
        t
    }

    #[test]
    fn rows_and_columns_are_tracked() {
        let t = sample_table();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.column_index("jobs"), Some(1));
        assert_eq!(t.column_index("nope"), None);
        assert_eq!(t.numeric_column("mean_walltime"), vec![3600.5, 2800.0]);
        assert!(t.numeric_column("site").is_empty());
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.push_row(vec![1i64.into()]);
    }

    #[test]
    fn filter_rows_by_predicate() {
        let t = sample_table();
        let big = t.filter_rows("jobs", |v| v.as_f64().unwrap_or(0.0) > 100.0);
        assert_eq!(big.len(), 1);
        assert_eq!(big[0][0], Value::Text("CERN".into()));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(&["name"]);
        t.push_row(vec!["a,b".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn store_creates_and_persists_tables() {
        let mut store = TableStore::new();
        store
            .table("site_summary", &["site", "jobs", "mean_walltime"])
            .push_row(vec!["CERN".into(), 1u64.into(), 10.0.into()]);
        store
            .table("events", &["event_id", "state"])
            .push_row(vec![1u64.into(), "finished".into()]);
        assert_eq!(store.table_names(), vec!["events", "site_summary"]);
        assert_eq!(store.get("events").unwrap().len(), 1);
        assert!(store.get("missing").is_none());

        let dir = std::env::temp_dir().join("cgsim-store-test");
        store.save_csv_dir(&dir).unwrap();
        let text = std::fs::read_to_string(dir.join("site_summary.csv")).unwrap();
        assert!(text.starts_with("site,jobs,mean_walltime"));
        std::fs::remove_dir_all(dir).ok();

        let json = store.to_json();
        assert!(json.contains("site_summary"));
    }
}
