//! Event-level records (Table 1) and per-job outcomes.

use cgsim_workload::{JobId, JobKind, JobState};
use serde::{Deserialize, Serialize};

/// One row of the event-level monitoring dataset.
///
/// The columns match the paper's Table 1: every job state transition is
/// recorded together with the concurrent state of the site it concerns
/// (available cores, queued jobs, cumulative assigned and finished counts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Monotonically increasing event id.
    pub event_id: u64,
    /// Virtual time of the event, seconds.
    pub time_s: f64,
    /// Job the event concerns.
    pub job_id: JobId,
    /// New state of the job.
    pub state: JobState,
    /// Site concerned (empty for events at the main server, e.g. submission).
    pub site: String,
    /// Cores not allocated at the site at event time.
    pub available_cores: u64,
    /// Jobs waiting in the site queue at event time.
    pub pending_jobs: u64,
    /// Cumulative jobs dispatched to the site.
    pub assigned_jobs: u64,
    /// Cumulative jobs finished at the site.
    pub finished_jobs: u64,
}

impl EventRecord {
    /// CSV header matching [`EventRecord::to_csv_row`].
    pub const CSV_HEADER: &'static str =
        "event_id,time_s,job_id,state,site,available_cores,pending_jobs,assigned_jobs,finished_jobs";

    /// Renders the record as one CSV row.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{:.3},{},{},{},{},{},{},{}",
            self.event_id,
            self.time_s,
            self.job_id.0,
            self.state.label(),
            self.site,
            self.available_cores,
            self.pending_jobs,
            self.assigned_jobs,
            self.finished_jobs
        )
    }
}

/// Final outcome of one simulated job (the per-job row used for calibration
/// and metric computation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Job id.
    pub id: JobId,
    /// Job class.
    pub kind: JobKind,
    /// Cores used.
    pub cores: u32,
    /// Computational requirement in HS23-seconds (copied from the job record;
    /// the dominant feature for walltime surrogate models).
    #[serde(default)]
    pub work_hs23: f64,
    /// Site the job executed at.
    pub site: String,
    /// Submission time (s).
    pub submit_time: f64,
    /// Time the job was dispatched to a site (s).
    pub assign_time: f64,
    /// Time execution started (s).
    pub start_time: f64,
    /// Time the job reached a terminal state (s).
    pub end_time: f64,
    /// Terminal state (finished or failed).
    pub final_state: JobState,
    /// Input bytes staged over the network.
    pub staged_bytes: u64,
    /// Simulated walltime: execution duration including staging (s).
    pub walltime: f64,
    /// Simulated queue time: submission to execution start (s).
    pub queue_time: f64,
    /// Ground-truth walltime from the trace, if present.
    pub hist_walltime: Option<f64>,
    /// Ground-truth queue time from the trace, if present.
    pub hist_queue_time: Option<f64>,
}

impl JobOutcome {
    /// Total simulated time from submission to completion.
    pub fn total_time(&self) -> f64 {
        self.end_time - self.submit_time
    }

    /// True when the job completed successfully.
    pub fn succeeded(&self) -> bool {
        self.final_state == JobState::Finished
    }

    /// Core-seconds consumed by the job's execution phase.
    pub fn core_seconds(&self) -> f64 {
        self.walltime * self.cores as f64
    }

    /// CSV header matching [`JobOutcome::to_csv_row`].
    pub const CSV_HEADER: &'static str = "job_id,kind,cores,work_hs23,site,submit_time,assign_time,start_time,end_time,final_state,staged_bytes,walltime,queue_time,hist_walltime,hist_queue_time";

    /// Renders the outcome as one CSV row.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{:.1},{},{:.3},{:.3},{:.3},{:.3},{},{},{:.3},{:.3},{},{}",
            self.id.0,
            self.kind.label(),
            self.cores,
            self.work_hs23,
            self.site,
            self.submit_time,
            self.assign_time,
            self.start_time,
            self.end_time,
            self.final_state.label(),
            self.staged_bytes,
            self.walltime,
            self.queue_time,
            self.hist_walltime
                .map(|v| format!("{v:.3}"))
                .unwrap_or_default(),
            self.hist_queue_time
                .map(|v| format!("{v:.3}"))
                .unwrap_or_default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> JobOutcome {
        JobOutcome {
            id: JobId(6466065355),
            kind: JobKind::SingleCore,
            cores: 1,
            work_hs23: 36_000.0,
            site: "DESY-ZN".into(),
            submit_time: 0.0,
            assign_time: 5.0,
            start_time: 65.0,
            end_time: 3665.0,
            final_state: JobState::Finished,
            staged_bytes: 2_000_000_000,
            walltime: 3600.0,
            queue_time: 65.0,
            hist_walltime: Some(3500.0),
            hist_queue_time: Some(50.0),
        }
    }

    #[test]
    fn event_record_csv_row_matches_header_columns() {
        let rec = EventRecord {
            event_id: 8570,
            time_s: 123.456,
            job_id: JobId(6466065355),
            state: JobState::Finished,
            site: "DESY-ZN".into(),
            available_cores: 66120,
            pending_jobs: 0,
            assigned_jobs: 134,
            finished_jobs: 62,
        };
        let row = rec.to_csv_row();
        assert_eq!(
            row.split(',').count(),
            EventRecord::CSV_HEADER.split(',').count()
        );
        assert!(row.contains("finished"));
        assert!(row.contains("DESY-ZN"));
        assert!(row.starts_with("8570,"));
    }

    #[test]
    fn outcome_derived_quantities() {
        let o = outcome();
        assert_eq!(o.total_time(), 3665.0);
        assert!(o.succeeded());
        assert_eq!(o.core_seconds(), 3600.0);
        let row = o.to_csv_row();
        assert_eq!(
            row.split(',').count(),
            JobOutcome::CSV_HEADER.split(',').count()
        );
    }

    #[test]
    fn failed_outcome_is_not_success() {
        let mut o = outcome();
        o.final_state = JobState::Failed;
        assert!(!o.succeeded());
    }
}
