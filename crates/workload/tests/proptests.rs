//! Property-based tests for the synthetic PanDA-like trace generator.

use cgsim_platform::presets::wlcg_platform;
use cgsim_workload::{JobKind, TraceConfig, TraceGenerator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated traces always satisfy the structural invariants the
    /// simulator relies on, for arbitrary (bounded) generator settings.
    #[test]
    fn traces_are_well_formed(
        jobs in 1usize..400,
        seed in any::<u64>(),
        sites in 1usize..20,
        multicore_fraction in 0.0f64..1.0,
        window in 0.0f64..86_400.0,
    ) {
        let platform = wlcg_platform(sites, seed ^ 0x5a5a);
        let mut cfg = TraceConfig::with_jobs(jobs, seed);
        cfg.multicore_fraction = multicore_fraction;
        cfg.submission_window_s = window;
        let trace = TraceGenerator::new(cfg).generate(&platform);

        prop_assert_eq!(trace.len(), jobs);
        // Sorted by submission time, inside the window.
        for pair in trace.jobs.windows(2) {
            prop_assert!(pair[0].submit_time <= pair[1].submit_time);
        }
        for job in &trace.jobs {
            prop_assert!(job.submit_time >= 0.0 && job.submit_time <= window + 1e-9);
            prop_assert!(job.work_hs23 > 0.0);
            prop_assert!(job.input_files >= 1);
            prop_assert!(job.input_bytes > 0);
            prop_assert!(job.hist_walltime.unwrap() > 0.0);
            prop_assert!(job.hist_queue_time.unwrap() >= 0.0);
            prop_assert!(!job.hist_site.is_empty());
            match job.kind {
                JobKind::SingleCore => prop_assert_eq!(job.cores, 1),
                JobKind::MultiCore => prop_assert!(job.cores > 1),
            }
        }
        // Job ids are unique.
        let ids: std::collections::HashSet<_> = trace.jobs.iter().map(|j| j.id).collect();
        prop_assert_eq!(ids.len(), jobs);
        // Hidden multipliers cover every referenced site and sit in the range.
        let (lo, hi) = TraceConfig::default().hidden_multiplier_range;
        for job in &trace.jobs {
            let m = trace.hidden_site_multipliers[&job.hist_site];
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }
    }

    /// Splitting a trace partitions it: no duplication, no loss, any fraction.
    #[test]
    fn split_is_a_partition(jobs in 1usize..300, seed in any::<u64>(), fraction in 0.0f64..1.0) {
        let platform = wlcg_platform(5, 1);
        let trace = TraceGenerator::new(TraceConfig::with_jobs(jobs, seed)).generate(&platform);
        let (a, b) = trace.split(fraction);
        prop_assert_eq!(a.len() + b.len(), trace.len());
        let mut ids: Vec<_> = a.jobs.iter().chain(&b.jobs).map(|j| j.id).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), trace.len());
    }

    /// CSV export always has exactly one row per job plus the header.
    #[test]
    fn csv_has_one_row_per_job(jobs in 1usize..200, seed in any::<u64>()) {
        let platform = wlcg_platform(3, 9);
        let trace = TraceGenerator::new(TraceConfig::with_jobs(jobs, seed)).generate(&platform);
        prop_assert_eq!(trace.to_csv().lines().count(), jobs + 1);
    }
}
