//! Property-based tests for the synthetic PanDA-like trace generator.

use std::collections::HashMap;

use cgsim_des::rng::Rng;
use cgsim_platform::presets::wlcg_platform;
use cgsim_workload::{JobId, JobKind, JobRecord, TaskId, Trace, TraceConfig, TraceGenerator};
use proptest::prelude::*;

/// Builds an arbitrary trace directly (not through the generator), covering
/// corner cases the generator never produces: zero jobs, single jobs, empty
/// site names, sites with JSON-hostile characters, absent ground truth and
/// extreme numeric values.
fn arbitrary_trace(jobs: usize, seed: u64) -> Trace {
    let mut rng = Rng::new(seed);
    let sites = [
        "",
        "CERN",
        "site with spaces",
        "quote\"backslash\\",
        "tab\tnewline\n",
        "ünïcøde-🛰",
    ];
    let records = (0..jobs)
        .map(|i| {
            let multi = rng.chance(0.4);
            JobRecord {
                id: JobId(rng.next_u64()),
                task_id: TaskId(rng.next_u64() % 1_000),
                kind: if multi {
                    JobKind::MultiCore
                } else {
                    JobKind::SingleCore
                },
                cores: if multi { 8 } else { 1 },
                work_hs23: rng.uniform_range(1e-6, 1e12),
                memory_mb: rng.uniform_range(0.0, 1e6),
                input_files: rng.index(100) as u32,
                input_bytes: rng.next_u64() % (1 << 45),
                output_bytes: rng.next_u64() % (1 << 45),
                submit_time: rng.uniform_range(0.0, 1e7),
                hist_site: sites[rng.index(sites.len())].to_string(),
                hist_walltime: rng.chance(0.7).then(|| rng.uniform_range(1e-9, 1e7)),
                hist_queue_time: rng.chance(0.7).then(|| rng.uniform_range(0.0, 1e6)),
            }
            .tap(i)
        })
        .collect();
    let mut hidden = HashMap::new();
    for s in sites.iter().filter(|s| !s.is_empty()) {
        if rng.chance(0.5) {
            hidden.insert(s.to_string(), rng.uniform_range(0.1, 3.0));
        }
    }
    Trace {
        jobs: records,
        hidden_site_multipliers: hidden,
    }
}

/// Tiny helper so the closure above stays an expression (keeps ids unique
/// even when the RNG collides).
trait Tap {
    fn tap(self, i: usize) -> Self;
}
impl Tap for JobRecord {
    fn tap(mut self, i: usize) -> Self {
        self.id = JobId(self.id.0 ^ (i as u64) << 1);
        self
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated traces always satisfy the structural invariants the
    /// simulator relies on, for arbitrary (bounded) generator settings.
    #[test]
    fn traces_are_well_formed(
        jobs in 1usize..400,
        seed in any::<u64>(),
        sites in 1usize..20,
        multicore_fraction in 0.0f64..1.0,
        window in 0.0f64..86_400.0,
    ) {
        let platform = wlcg_platform(sites, seed ^ 0x5a5a);
        let mut cfg = TraceConfig::with_jobs(jobs, seed);
        cfg.multicore_fraction = multicore_fraction;
        cfg.submission_window_s = window;
        let trace = TraceGenerator::new(cfg).generate(&platform);

        prop_assert_eq!(trace.len(), jobs);
        // Sorted by submission time, inside the window.
        for pair in trace.jobs.windows(2) {
            prop_assert!(pair[0].submit_time <= pair[1].submit_time);
        }
        for job in &trace.jobs {
            prop_assert!(job.submit_time >= 0.0 && job.submit_time <= window + 1e-9);
            prop_assert!(job.work_hs23 > 0.0);
            prop_assert!(job.input_files >= 1);
            prop_assert!(job.input_bytes > 0);
            prop_assert!(job.hist_walltime.unwrap() > 0.0);
            prop_assert!(job.hist_queue_time.unwrap() >= 0.0);
            prop_assert!(!job.hist_site.is_empty());
            match job.kind {
                JobKind::SingleCore => prop_assert_eq!(job.cores, 1),
                JobKind::MultiCore => prop_assert!(job.cores > 1),
            }
        }
        // Job ids are unique.
        let ids: std::collections::HashSet<_> = trace.jobs.iter().map(|j| j.id).collect();
        prop_assert_eq!(ids.len(), jobs);
        // Hidden multipliers cover every referenced site and sit in the range.
        let (lo, hi) = TraceConfig::default().hidden_multiplier_range;
        for job in &trace.jobs {
            let m = trace.hidden_site_multipliers[&job.hist_site];
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }
    }

    /// Splitting a trace partitions it: no duplication, no loss, any fraction.
    #[test]
    fn split_is_a_partition(jobs in 1usize..300, seed in any::<u64>(), fraction in 0.0f64..1.0) {
        let platform = wlcg_platform(5, 1);
        let trace = TraceGenerator::new(TraceConfig::with_jobs(jobs, seed)).generate(&platform);
        let (a, b) = trace.split(fraction);
        prop_assert_eq!(a.len() + b.len(), trace.len());
        let mut ids: Vec<_> = a.jobs.iter().chain(&b.jobs).map(|j| j.id).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), trace.len());
    }

    /// CSV export always has exactly one row per job plus the header.
    #[test]
    fn csv_has_one_row_per_job(jobs in 1usize..200, seed in any::<u64>()) {
        let platform = wlcg_platform(3, 9);
        let trace = TraceGenerator::new(TraceConfig::with_jobs(jobs, seed)).generate(&platform);
        prop_assert_eq!(trace.to_csv().lines().count(), jobs + 1);
    }

    /// `save_jsonl`/`load_jsonl` round-trips every field of every job — for
    /// arbitrary traces including the empty trace, single-job traces, absent
    /// ground truth, empty site names and JSON-hostile characters — and the
    /// hidden multiplier header survives byte-exactly.
    #[test]
    fn jsonl_roundtrip_preserves_every_field(jobs in 0usize..40, seed in any::<u64>()) {
        let trace = arbitrary_trace(jobs, seed);
        let path = std::env::temp_dir().join(format!("cgsim-prop-roundtrip-{seed}-{jobs}.jsonl"));
        trace.save_jsonl(&path).unwrap();
        let loaded = Trace::load_jsonl(&path).unwrap();
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(loaded.jobs.len(), trace.jobs.len());
        for (a, b) in trace.jobs.iter().zip(&loaded.jobs) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.task_id, b.task_id);
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.cores, b.cores);
            prop_assert_eq!(a.work_hs23.to_bits(), b.work_hs23.to_bits());
            prop_assert_eq!(a.memory_mb.to_bits(), b.memory_mb.to_bits());
            prop_assert_eq!(a.input_files, b.input_files);
            prop_assert_eq!(a.input_bytes, b.input_bytes);
            prop_assert_eq!(a.output_bytes, b.output_bytes);
            prop_assert_eq!(a.submit_time.to_bits(), b.submit_time.to_bits());
            prop_assert_eq!(&a.hist_site, &b.hist_site);
            prop_assert_eq!(a.hist_walltime.map(f64::to_bits), b.hist_walltime.map(f64::to_bits));
            prop_assert_eq!(a.hist_queue_time.map(f64::to_bits), b.hist_queue_time.map(f64::to_bits));
        }
        prop_assert_eq!(
            trace.hidden_site_multipliers.len(),
            loaded.hidden_site_multipliers.len()
        );
        for (site, mult) in &trace.hidden_site_multipliers {
            let back = loaded.hidden_site_multipliers.get(site);
            prop_assert_eq!(Some(mult.to_bits()), back.map(|m| m.to_bits()), "site {:?}", site);
        }
    }

    /// The streaming iterator and the collecting `generate` are
    /// bit-identical across random configurations: `stream(..).collect()`
    /// plus the stable `submit_time` sort reproduces `generate` exactly
    /// (every field compared on raw bits), and the hidden multipliers agree.
    /// Zero `submission_window_s` puts every job at t = 0, so the sort is
    /// all ties — the stable order itself is under test there.
    #[test]
    fn stream_collects_to_generate(
        jobs in 0usize..300,
        seed in any::<u64>(),
        sites in 1usize..12,
        window_zero in any::<bool>(),
        multicore_fraction in 0.0f64..1.0,
        mean_input_files in 0.0f64..8.0,
    ) {
        let mut cfg = TraceConfig::with_jobs(jobs, seed);
        if window_zero {
            cfg.submission_window_s = 0.0;
        }
        cfg.multicore_fraction = multicore_fraction;
        cfg.mean_input_files = mean_input_files;
        let platform = wlcg_platform(sites, seed % 31);
        let generator = TraceGenerator::new(cfg);

        let trace = generator.generate(&platform);
        let stream = generator.stream(&platform);
        prop_assert_eq!(stream.len(), jobs);
        let hidden = stream.hidden_site_multipliers();
        let mut streamed: Vec<JobRecord> = stream.collect();
        streamed.sort_by(|a, b| a.submit_time.partial_cmp(&b.submit_time).unwrap());

        prop_assert_eq!(streamed.len(), trace.jobs.len());
        for (a, b) in trace.jobs.iter().zip(&streamed) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.task_id, b.task_id);
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.cores, b.cores);
            prop_assert_eq!(a.work_hs23.to_bits(), b.work_hs23.to_bits());
            prop_assert_eq!(a.memory_mb.to_bits(), b.memory_mb.to_bits());
            prop_assert_eq!(a.input_files, b.input_files);
            prop_assert_eq!(a.input_bytes, b.input_bytes);
            prop_assert_eq!(a.output_bytes, b.output_bytes);
            prop_assert_eq!(a.submit_time.to_bits(), b.submit_time.to_bits());
            prop_assert_eq!(&a.hist_site, &b.hist_site);
            prop_assert_eq!(a.hist_walltime.map(f64::to_bits), b.hist_walltime.map(f64::to_bits));
            prop_assert_eq!(a.hist_queue_time.map(f64::to_bits), b.hist_queue_time.map(f64::to_bits));
        }
        prop_assert_eq!(hidden.len(), trace.hidden_site_multipliers.len());
        for (site, mult) in &trace.hidden_site_multipliers {
            let got = hidden.get(site).map(|m| m.to_bits());
            prop_assert_eq!(Some(mult.to_bits()), got, "site {:?}", site);
        }
    }
}
