//! Golden-trace regression pins for the synthetic generator.
//!
//! The hidden-multiplier refactor (PR 10: `String`-keyed `HashMap` lookup →
//! `Vec<f64>` indexed by site position) and the streaming-iterator rewrite
//! must leave every generated trace *byte-identical*. These fingerprints were
//! captured from the pre-refactor materialised `generate` path; any change to
//! the RNG draw order, the hidden-multiplier values, or the job fields breaks
//! them.

use cgsim_platform::presets::{example_platform, wlcg_platform};
use cgsim_workload::{TraceConfig, TraceGenerator};

/// FNV-1a over the full bit patterns of a trace: every job field (CSV render
/// uses exact f64 `Display`, which is lossless round-trip in Rust) plus the
/// hidden multipliers in sorted site order with their raw f64 bits.
fn fingerprint(trace: &cgsim_workload::Trace) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(trace.to_csv().as_bytes());
    let mut sites: Vec<_> = trace.hidden_site_multipliers.iter().collect();
    sites.sort_by(|a, b| a.0.cmp(b.0));
    for (name, mult) in sites {
        eat(name.as_bytes());
        eat(&mult.to_bits().to_le_bytes());
    }
    h
}

#[test]
fn default_config_fingerprint_is_stable() {
    let trace = TraceGenerator::new(TraceConfig::with_jobs(500, 42)).generate(&example_platform());
    assert_eq!(
        fingerprint(&trace),
        14121070993854794862,
        "generate() output changed — the generator must stay byte-identical"
    );
}

#[test]
fn wlcg_config_fingerprint_is_stable() {
    let mut cfg = TraceConfig::with_jobs(1_000, 9);
    cfg.mean_file_bytes = 5e8;
    cfg.submission_window_s = 0.0; // all ties at t=0: the sort must stay stable
    let trace = TraceGenerator::new(cfg).generate(&wlcg_platform(10, 5));
    assert_eq!(
        fingerprint(&trace),
        4165990636885134928,
        "generate() output changed — the generator must stay byte-identical"
    );
}
