//! # cgsim-workload — jobs, PanDA-like records and synthetic traces
//!
//! CGSim is calibrated and evaluated against historical job execution records
//! from the PanDA workload management system (paper §4.2): six months of
//! production ATLAS jobs, each carrying its computational requirements,
//! timestamps, input/output file counts, the site PanDA dispatched it to, and
//! ground-truth walltime / queue-time measurements.
//!
//! Those production records are not publicly available, so this crate
//! provides:
//!
//! * the **job model** ([`job`]) — the standardised job structure that the
//!   paper installs as a header for plugin authors (id, core count,
//!   computational work, memory, input/output files, timestamps, historical
//!   site assignment and ground-truth durations), together with the job
//!   lifecycle states tracked by the monitoring layer (pending, assigned,
//!   running, finished, failed),
//! * a **synthetic PanDA-like trace generator** ([`trace::TraceGenerator`])
//!   that reproduces the statistical shape of the production workload
//!   (lognormal job lengths, Poisson file counts, heavy-tailed file sizes,
//!   a single-core analysis / multi-core production mix, per-site assignment
//!   skew) and — crucially for the calibration experiments — computes the
//!   "historical" ground-truth walltimes from *hidden* per-site true speeds,
//! * **trace I/O** (JSONL and CSV) so traces can be saved, inspected and
//!   replayed reproducibly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod job;
pub mod trace;

pub use job::{ideal_walltime, parallel_efficiency, JobId, JobKind, JobRecord, JobState, TaskId};
pub use trace::{Trace, TraceConfig, TraceGenerator, TraceStream, TraceSummary};
