//! The standardised job structure and job lifecycle states.
//!
//! CGSim "uses a standardized job (workload) structure, which is installed as
//! a header" for plugin authors (paper §3.3). [`JobRecord`] is that structure:
//! everything an allocation policy may inspect when deciding where to place a
//! job, plus the historical ground-truth fields used for calibration.

use serde::{Deserialize, Serialize};

/// Unique job identifier (PanDA id).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Identifier of the task (production campaign / analysis) a job belongs to.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct TaskId(pub u64);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// Job class, mirroring the single-core / multi-core split of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobKind {
    /// Single-core user analysis job.
    SingleCore,
    /// Multi-core production job (typically 8 cores in ATLAS production).
    MultiCore,
}

impl JobKind {
    /// Short label used in reports ("single" / "multi").
    pub fn label(self) -> &'static str {
        match self {
            JobKind::SingleCore => "single",
            JobKind::MultiCore => "multi",
        }
    }
}

/// Lifecycle state of a job inside the simulation.
///
/// These are exactly the states the paper's monitoring layer records
/// ("pending, assigned, running, finished, failed", §4.3.2), with an explicit
/// staging state for input transfers so data-movement policies are observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum JobState {
    /// Submitted to the main server but not yet dispatched to a site.
    Pending,
    /// Dispatched to a site queue, waiting for free cores.
    Assigned,
    /// Input data is being transferred to the execution site.
    Staging,
    /// Executing on the site's worker nodes.
    Running,
    /// Completed successfully.
    Finished,
    /// Terminated with an error (and not retried further).
    Failed,
}

impl JobState {
    /// True for terminal states (finished or failed).
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Finished | JobState::Failed)
    }

    /// Lower-case label as it appears in the event-level dataset (Table 1).
    pub fn label(self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Assigned => "assigned",
            JobState::Staging => "staging",
            JobState::Running => "running",
            JobState::Finished => "finished",
            JobState::Failed => "failed",
        }
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A PanDA-like job record: the simulation input for one job.
///
/// Work is expressed in *HS23-seconds*: the number of seconds the job would
/// take on a single reference core of speed 1.0 HS23 unit. A site with
/// per-core speed `s` therefore executes the same work in `work_hs23 / s`
/// core-seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Unique job id (PanDA id).
    pub id: JobId,
    /// Task this job belongs to.
    pub task_id: TaskId,
    /// Single-core analysis or multi-core production.
    pub kind: JobKind,
    /// Number of cores the job requests (1 for single-core jobs).
    pub cores: u32,
    /// Computational requirement in HS23-seconds (see struct docs).
    pub work_hs23: f64,
    /// Memory requirement in MB.
    pub memory_mb: f64,
    /// Number of input files.
    pub input_files: u32,
    /// Total input size in bytes.
    pub input_bytes: u64,
    /// Total output size in bytes.
    pub output_bytes: u64,
    /// Submission time, seconds since the start of the trace.
    pub submit_time: f64,
    /// Site PanDA historically dispatched this job to (empty if unknown).
    #[serde(default)]
    pub hist_site: String,
    /// Ground-truth walltime (actual processing duration) in seconds, if known.
    #[serde(default)]
    pub hist_walltime: Option<f64>,
    /// Ground-truth queue time (scheduling + resource allocation delay) in
    /// seconds, if known.
    #[serde(default)]
    pub hist_queue_time: Option<f64>,
}

impl JobRecord {
    /// Creates a minimal record with the given id, kind, cores and work;
    /// other fields take neutral defaults.
    pub fn new(id: u64, kind: JobKind, cores: u32, work_hs23: f64) -> Self {
        JobRecord {
            id: JobId(id),
            task_id: TaskId(0),
            kind,
            cores,
            work_hs23,
            memory_mb: 2000.0 * cores as f64,
            input_files: 1,
            input_bytes: 1_000_000_000,
            output_bytes: 300_000_000,
            submit_time: 0.0,
            hist_site: String::new(),
            hist_walltime: None,
            hist_queue_time: None,
        }
    }

    /// Ground-truth total duration (walltime + queue time), if both are known.
    pub fn hist_total_time(&self) -> Option<f64> {
        Some(self.hist_walltime? + self.hist_queue_time.unwrap_or(0.0))
    }
}

/// Parallel efficiency of a multi-core job: the fraction of ideal speed-up
/// retained when running on `cores` cores. ATLAS multi-core production jobs
/// exhibit close-to-linear but not perfect scaling; we model the classic
/// serial-fraction (Amdahl) shape with a 2 % serial fraction.
pub fn parallel_efficiency(cores: u32) -> f64 {
    const SERIAL_FRACTION: f64 = 0.02;
    if cores <= 1 {
        return 1.0;
    }
    let n = cores as f64;
    // Amdahl speed-up S(n) = 1 / (serial + (1-serial)/n); efficiency = S/n.
    1.0 / (SERIAL_FRACTION * n + (1.0 - SERIAL_FRACTION))
}

/// Ideal (contention-free) walltime of a job on a site with the given
/// effective per-core speed: `work / (cores * speed * efficiency)`.
///
/// Both the simulation core and the synthetic ground-truth generator use this
/// single definition, so the calibration residual comes only from the noise
/// and contention the simulator has to explain — the same structure as the
/// paper's calibration objective `Δ = Sim_exe_time − His_exe_time`.
pub fn ideal_walltime(work_hs23: f64, cores: u32, speed_per_core: f64) -> f64 {
    assert!(speed_per_core > 0.0, "speed must be positive");
    assert!(cores > 0, "cores must be positive");
    work_hs23 / (cores as f64 * speed_per_core * parallel_efficiency(cores))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_state_terminality() {
        assert!(JobState::Finished.is_terminal());
        assert!(JobState::Failed.is_terminal());
        for s in [
            JobState::Pending,
            JobState::Assigned,
            JobState::Staging,
            JobState::Running,
        ] {
            assert!(!s.is_terminal());
        }
    }

    #[test]
    fn state_labels_match_table1_vocabulary() {
        assert_eq!(JobState::Finished.label(), "finished");
        assert_eq!(JobState::Pending.to_string(), "pending");
        assert_eq!(JobKind::MultiCore.label(), "multi");
    }

    #[test]
    fn parallel_efficiency_is_monotone_and_bounded() {
        assert_eq!(parallel_efficiency(1), 1.0);
        let mut last = 1.0;
        for cores in 2..=64 {
            let eff = parallel_efficiency(cores);
            assert!(eff > 0.0 && eff <= 1.0);
            assert!(eff <= last, "efficiency should not increase with cores");
            last = eff;
        }
        // 8-core production jobs retain most of their efficiency.
        assert!(parallel_efficiency(8) > 0.85);
    }

    #[test]
    fn ideal_walltime_scales_as_expected() {
        // Twice the work -> twice the walltime.
        let base = ideal_walltime(1000.0, 1, 10.0);
        assert!((ideal_walltime(2000.0, 1, 10.0) - 2.0 * base).abs() < 1e-9);
        // Twice the speed -> half the walltime.
        assert!((ideal_walltime(1000.0, 1, 20.0) - base / 2.0).abs() < 1e-9);
        // More cores -> shorter, but not below work/(cores*speed).
        let multi = ideal_walltime(1000.0, 8, 10.0);
        assert!(multi < base);
        assert!(multi >= 1000.0 / (8.0 * 10.0));
    }

    #[test]
    fn record_defaults_and_total_time() {
        let mut job = JobRecord::new(1, JobKind::SingleCore, 1, 36_000.0);
        assert_eq!(job.hist_total_time(), None);
        job.hist_walltime = Some(3600.0);
        assert_eq!(job.hist_total_time(), Some(3600.0));
        job.hist_queue_time = Some(400.0);
        assert_eq!(job.hist_total_time(), Some(4000.0));
        assert_eq!(job.cores, 1);
        assert!(job.memory_mb > 0.0);
    }

    #[test]
    fn ids_display() {
        assert_eq!(JobId(5).to_string(), "job#5");
        assert_eq!(TaskId(2).to_string(), "task#2");
    }

    #[test]
    #[should_panic]
    fn ideal_walltime_rejects_zero_speed() {
        ideal_walltime(100.0, 1, 0.0);
    }
}
