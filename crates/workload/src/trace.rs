//! Synthetic PanDA-like traces and trace I/O.
//!
//! The generator reproduces the statistical shape of ATLAS production
//! workloads as characterised in the paper and its companion work:
//!
//! * a mix of single-core analysis jobs and 8-core production jobs,
//! * approximately log-normal computational requirements (long right tail),
//! * Poisson input-file counts with heavy-tailed file sizes,
//! * Poisson (optionally bursty) arrivals over the trace window,
//! * historical site assignments skewed towards large sites (PanDA dispatches
//!   proportionally to available capacity),
//! * ground-truth walltimes computed from **hidden** per-site true speeds
//!   plus multiplicative noise — the quantity the calibration experiments
//!   must recover.

use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

use cgsim_des::rng::Rng;
use cgsim_des::stats::Summary;
use cgsim_platform::spec::PlatformSpec;
use serde::{Deserialize, Serialize};

use crate::job::{ideal_walltime, JobId, JobKind, JobRecord, TaskId};

/// Configuration of the synthetic trace generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of jobs to generate.
    pub job_count: usize,
    /// RNG seed.
    pub seed: u64,
    /// Length of the submission window in seconds (arrivals are spread over
    /// this window; 0 means all jobs are submitted at t = 0).
    pub submission_window_s: f64,
    /// Fraction of multi-core production jobs (the rest are single-core).
    pub multicore_fraction: f64,
    /// Core count of multi-core jobs (8 in ATLAS production).
    pub multicore_cores: u32,
    /// Mean computational requirement of single-core jobs, in HS23-seconds.
    pub mean_work_single: f64,
    /// Mean computational requirement of multi-core jobs, in HS23-seconds.
    pub mean_work_multi: f64,
    /// Coefficient of variation of the (log-normal) work distribution.
    pub work_cv: f64,
    /// Mean number of input files per job (Poisson).
    pub mean_input_files: f64,
    /// Mean input file size in bytes (Pareto-tailed).
    pub mean_file_bytes: f64,
    /// Output size as a fraction of input size.
    pub output_ratio: f64,
    /// Multiplicative noise (coefficient of variation) applied to the
    /// ground-truth walltime; this is the irreducible calibration error.
    pub truth_noise_cv: f64,
    /// Range of the hidden per-site true-speed multiplier. The simulator is
    /// initialised with multiplier 1.0, so a wide range means a large
    /// pre-calibration error (the paper reports 76 % relative MAE before
    /// calibration).
    pub hidden_multiplier_range: (f64, f64),
    /// Mean ground-truth queue time in seconds (exponential).
    pub mean_queue_time_s: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            job_count: 1_000,
            seed: 0xA71A5,
            submission_window_s: 6.0 * 3600.0,
            multicore_fraction: 0.4,
            multicore_cores: 8,
            mean_work_single: 4.0 * 3600.0 * 10.0, // ~4 h on a 10-HS23 core
            mean_work_multi: 20.0 * 3600.0 * 10.0, // ~2.5 h on 8 such cores
            work_cv: 0.8,
            mean_input_files: 4.0,
            mean_file_bytes: 1.5e9,
            output_ratio: 0.3,
            truth_noise_cv: 0.15,
            hidden_multiplier_range: (0.4, 2.2),
            mean_queue_time_s: 600.0,
        }
    }
}

impl TraceConfig {
    /// Convenience constructor for a trace of `job_count` jobs with the given
    /// seed and defaults for everything else.
    pub fn with_jobs(job_count: usize, seed: u64) -> Self {
        TraceConfig {
            job_count,
            seed,
            ..TraceConfig::default()
        }
    }
}

/// A workload trace: the job records plus the hidden ground-truth site
/// multipliers used to generate them (kept for validation of calibration).
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Trace {
    /// Job records, sorted by submission time.
    pub jobs: Vec<JobRecord>,
    /// Hidden true speed multiplier per site name (what calibration should
    /// recover). Empty for traces loaded from external files.
    #[serde(default)]
    pub hidden_site_multipliers: HashMap<String, f64>,
}

/// Aggregate statistics of a trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of jobs.
    pub job_count: usize,
    /// Number of multi-core jobs.
    pub multicore_jobs: usize,
    /// Distinct historical sites.
    pub site_count: usize,
    /// Summary of computational work (HS23-seconds).
    pub work: Summary,
    /// Summary of input sizes (bytes).
    pub input_bytes: Summary,
    /// Summary of ground-truth walltimes (seconds), when present.
    pub hist_walltime: Option<Summary>,
}

impl Trace {
    /// Number of jobs in the trace.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if the trace holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Jobs historically assigned to `site`.
    pub fn jobs_for_site<'a>(&'a self, site: &'a str) -> impl Iterator<Item = &'a JobRecord> {
        self.jobs.iter().filter(move |j| j.hist_site == site)
    }

    /// Distinct historical site names, sorted.
    pub fn site_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .jobs
            .iter()
            .filter(|j| !j.hist_site.is_empty())
            .map(|j| j.hist_site.clone())
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .collect();
        names.sort();
        names
    }

    /// Splits into (calibration, validation) sub-traces: the first
    /// `fraction` of each site's jobs go to the calibration part.
    pub fn split(&self, fraction: f64) -> (Trace, Trace) {
        assert!((0.0..=1.0).contains(&fraction));
        let mut per_site: HashMap<&str, Vec<&JobRecord>> = HashMap::new();
        for j in &self.jobs {
            per_site.entry(j.hist_site.as_str()).or_default().push(j);
        }
        let mut cal = Vec::new();
        let mut val = Vec::new();
        let mut site_keys: Vec<&&str> = per_site.keys().collect();
        site_keys.sort();
        for site in site_keys {
            let jobs = &per_site[*site];
            let cut = ((jobs.len() as f64) * fraction).round() as usize;
            for (i, j) in jobs.iter().enumerate() {
                if i < cut {
                    cal.push((*j).clone());
                } else {
                    val.push((*j).clone());
                }
            }
        }
        cal.sort_by(|a, b| a.submit_time.partial_cmp(&b.submit_time).unwrap());
        val.sort_by(|a, b| a.submit_time.partial_cmp(&b.submit_time).unwrap());
        (
            Trace {
                jobs: cal,
                hidden_site_multipliers: self.hidden_site_multipliers.clone(),
            },
            Trace {
                jobs: val,
                hidden_site_multipliers: self.hidden_site_multipliers.clone(),
            },
        )
    }

    /// Computes aggregate statistics.
    pub fn summary(&self) -> TraceSummary {
        let work: Vec<f64> = self.jobs.iter().map(|j| j.work_hs23).collect();
        let input: Vec<f64> = self.jobs.iter().map(|j| j.input_bytes as f64).collect();
        let walltimes: Vec<f64> = self.jobs.iter().filter_map(|j| j.hist_walltime).collect();
        TraceSummary {
            job_count: self.jobs.len(),
            multicore_jobs: self
                .jobs
                .iter()
                .filter(|j| j.kind == JobKind::MultiCore)
                .count(),
            site_count: self.site_names().len(),
            work: Summary::of(&work).unwrap_or(Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0.0,
            }),
            input_bytes: Summary::of(&input).unwrap_or(Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0.0,
            }),
            hist_walltime: Summary::of(&walltimes),
        }
    }

    /// Saves the trace as JSON lines (one job per line, plus a header line
    /// holding the hidden multipliers).
    pub fn save_jsonl(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        let header = serde_json::to_string(&self.hidden_site_multipliers)?;
        writeln!(file, "#meta {header}")?;
        for job in &self.jobs {
            writeln!(file, "{}", serde_json::to_string(job)?)?;
        }
        Ok(())
    }

    /// Loads a trace saved by [`Trace::save_jsonl`].
    pub fn load_jsonl(path: impl AsRef<Path>) -> std::io::Result<Trace> {
        let text = std::fs::read_to_string(path)?;
        let mut trace = Trace::default();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(meta) = line.strip_prefix("#meta ") {
                trace.hidden_site_multipliers = serde_json::from_str(meta)?;
            } else {
                trace.jobs.push(serde_json::from_str(line)?);
            }
        }
        Ok(trace)
    }

    /// Exports the jobs as CSV (the output layer's export format).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "job_id,task_id,kind,cores,work_hs23,memory_mb,input_files,input_bytes,output_bytes,submit_time,hist_site,hist_walltime,hist_queue_time\n",
        );
        for j in &self.jobs {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                j.id.0,
                j.task_id.0,
                j.kind.label(),
                j.cores,
                j.work_hs23,
                j.memory_mb,
                j.input_files,
                j.input_bytes,
                j.output_bytes,
                j.submit_time,
                j.hist_site,
                j.hist_walltime.map(|v| v.to_string()).unwrap_or_default(),
                j.hist_queue_time.map(|v| v.to_string()).unwrap_or_default(),
            ));
        }
        out
    }
}

/// The synthetic PanDA-like trace generator.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: TraceConfig,
}

impl TraceGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: TraceConfig) -> Self {
        TraceGenerator { config }
    }

    /// Generates a trace targeting the sites of `platform`.
    ///
    /// Historical site assignments follow PanDA's capacity-proportional
    /// dispatching: the probability of a job landing on a site is
    /// proportional to that site's core count.
    ///
    /// This is the collecting wrapper around [`TraceGenerator::stream`]: it
    /// materialises every record and sorts them by submission time (a stable
    /// sort, so equal-time jobs keep generation order). For million-job
    /// campaigns prefer `stream`, which holds only O(sites) state.
    pub fn generate(&self, platform: &PlatformSpec) -> Trace {
        let stream = self.stream(platform);
        let hidden = stream.hidden_site_multipliers();
        let mut jobs: Vec<JobRecord> = stream.collect();
        jobs.sort_by(|a, b| a.submit_time.partial_cmp(&b.submit_time).unwrap());

        Trace {
            jobs,
            hidden_site_multipliers: hidden,
        }
    }

    /// Streams job records one at a time, in **generation order** (not sorted
    /// by submission time — [`TraceGenerator::generate`] adds the stable
    /// sort). The iterator holds only O(sites) state, so a million-job
    /// workload can be consumed without ever materialising a `Vec`.
    ///
    /// The draw order per job is identical to the historical materialised
    /// path, so `stream(..).collect()` followed by a stable sort on
    /// `submit_time` is bit-identical to `generate` (pinned by the golden
    /// fingerprints in `tests/golden_trace.rs`).
    pub fn stream(&self, platform: &PlatformSpec) -> TraceStream {
        assert!(!platform.sites.is_empty(), "platform has no sites");
        let cfg = self.config.clone();
        let mut rng = Rng::new(cfg.seed);

        // Hidden true multiplier per site: what the simulator would need to
        // know to predict walltimes exactly (before noise). Indexed by site
        // position — the per-job lookup is a bounds-checked array read, not
        // a `String`-keyed hash probe.
        let mut sites = Vec::with_capacity(platform.sites.len());
        let mut hidden = Vec::with_capacity(platform.sites.len());
        for site in &platform.sites {
            let (lo, hi) = cfg.hidden_multiplier_range;
            hidden.push(rng.uniform_range(lo, hi));
            sites.push((site.name.clone(), site.hosts[0].speed_per_core));
        }

        let site_weights: Vec<f64> = platform
            .sites
            .iter()
            .map(|s| s.total_cores() as f64)
            .collect();

        TraceStream {
            cfg,
            rng,
            sites,
            site_weights,
            hidden,
            next: 0,
        }
    }
}

/// Streaming job-record source created by [`TraceGenerator::stream`].
///
/// Yields records in generation order with O(sites) resident state; the RNG
/// draw sequence per job matches the materialised `generate` path exactly.
#[derive(Debug, Clone)]
pub struct TraceStream {
    cfg: TraceConfig,
    rng: Rng,
    /// Per-site `(name, nominal speed-per-core)`, in platform order.
    sites: Vec<(String, f64)>,
    site_weights: Vec<f64>,
    /// Hidden true-speed multiplier per site, indexed by site position.
    hidden: Vec<f64>,
    next: usize,
}

impl TraceStream {
    /// The hidden per-site multipliers as a name-keyed map (the form stored
    /// in [`Trace::hidden_site_multipliers`]).
    pub fn hidden_site_multipliers(&self) -> HashMap<String, f64> {
        self.sites
            .iter()
            .map(|(name, _)| name.clone())
            .zip(self.hidden.iter().copied())
            .collect()
    }

    /// Jobs remaining to be yielded.
    pub fn remaining(&self) -> usize {
        self.cfg.job_count - self.next
    }
}

impl Iterator for TraceStream {
    type Item = JobRecord;

    fn next(&mut self) -> Option<JobRecord> {
        if self.next >= self.cfg.job_count {
            return None;
        }
        let i = self.next;
        self.next += 1;
        let cfg = &self.cfg;
        let rng = &mut self.rng;

        let is_multi = rng.chance(cfg.multicore_fraction);
        let (kind, cores, mean_work) = if is_multi {
            (JobKind::MultiCore, cfg.multicore_cores, cfg.mean_work_multi)
        } else {
            (JobKind::SingleCore, 1, cfg.mean_work_single)
        };
        let work = rng.lognormal_mean_cv(mean_work, cfg.work_cv).max(1.0);
        let input_files = (rng.poisson(cfg.mean_input_files) as u32).max(1);
        let mut input_bytes = 0.0;
        for _ in 0..input_files {
            input_bytes += rng.pareto(cfg.mean_file_bytes * 0.4, 1.8);
        }
        let output_bytes = input_bytes * cfg.output_ratio;
        let submit_time = if cfg.submission_window_s > 0.0 {
            rng.uniform_range(0.0, cfg.submission_window_s)
        } else {
            0.0
        };

        let site_idx = rng.weighted_index(&self.site_weights);
        let (site_name, nominal_speed) = &self.sites[site_idx];
        let true_speed = nominal_speed * self.hidden[site_idx];
        let noise = rng.lognormal_mean_cv(1.0, cfg.truth_noise_cv);
        let hist_walltime = ideal_walltime(work, cores, true_speed) * noise;
        let hist_queue_time = rng.exponential(1.0 / cfg.mean_queue_time_s);

        Some(JobRecord {
            id: JobId(6_460_000_000 + i as u64),
            task_id: TaskId((i / 50) as u64),
            kind,
            cores,
            work_hs23: work,
            memory_mb: 2_000.0 * cores as f64,
            input_files,
            input_bytes: input_bytes as u64,
            output_bytes: output_bytes as u64,
            submit_time,
            hist_site: site_name.clone(),
            hist_walltime: Some(hist_walltime),
            hist_queue_time: Some(hist_queue_time),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl ExactSizeIterator for TraceStream {}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_platform::presets::{example_platform, wlcg_platform};

    fn small_trace() -> Trace {
        TraceGenerator::new(TraceConfig::with_jobs(500, 42)).generate(&example_platform())
    }

    #[test]
    fn generates_requested_job_count() {
        let trace = small_trace();
        assert_eq!(trace.len(), 500);
        assert!(!trace.is_empty());
    }

    #[test]
    fn jobs_are_sorted_by_submit_time() {
        let trace = small_trace();
        for pair in trace.jobs.windows(2) {
            assert!(pair[0].submit_time <= pair[1].submit_time);
        }
    }

    #[test]
    fn is_deterministic_in_seed() {
        let platform = example_platform();
        let a = TraceGenerator::new(TraceConfig::with_jobs(200, 7)).generate(&platform);
        let b = TraceGenerator::new(TraceConfig::with_jobs(200, 7)).generate(&platform);
        let c = TraceGenerator::new(TraceConfig::with_jobs(200, 8)).generate(&platform);
        assert_eq!(a.jobs, b.jobs);
        assert_ne!(a.jobs, c.jobs);
    }

    #[test]
    fn multicore_fraction_is_respected() {
        let mut cfg = TraceConfig::with_jobs(2_000, 3);
        cfg.multicore_fraction = 0.4;
        let trace = TraceGenerator::new(cfg).generate(&example_platform());
        let multi = trace
            .jobs
            .iter()
            .filter(|j| j.kind == JobKind::MultiCore)
            .count();
        let frac = multi as f64 / trace.len() as f64;
        assert!((frac - 0.4).abs() < 0.05, "multi-core fraction {frac}");
        assert!(trace
            .jobs
            .iter()
            .filter(|j| j.kind == JobKind::MultiCore)
            .all(|j| j.cores == 8));
    }

    #[test]
    fn ground_truth_fields_are_populated_and_positive() {
        let trace = small_trace();
        for job in &trace.jobs {
            assert!(job.hist_walltime.unwrap() > 0.0);
            assert!(job.hist_queue_time.unwrap() >= 0.0);
            assert!(!job.hist_site.is_empty());
            assert!(job.work_hs23 > 0.0);
            assert!(job.input_bytes > 0);
        }
    }

    #[test]
    fn hidden_multipliers_cover_all_sites() {
        let platform = wlcg_platform(10, 5);
        let trace = TraceGenerator::new(TraceConfig::with_jobs(100, 5)).generate(&platform);
        assert_eq!(trace.hidden_site_multipliers.len(), 10);
        for &m in trace.hidden_site_multipliers.values() {
            assert!(m > 0.0);
        }
    }

    #[test]
    fn site_assignment_skews_towards_large_sites() {
        let platform = example_platform(); // CERN has 2000 cores, LRZ-LMU 400.
        let trace = TraceGenerator::new(TraceConfig::with_jobs(4_000, 9)).generate(&platform);
        let cern = trace.jobs_for_site("CERN").count();
        let lrz = trace.jobs_for_site("LRZ-LMU").count();
        assert!(cern > lrz, "CERN={cern} LRZ={lrz}");
    }

    #[test]
    fn split_partitions_jobs() {
        let trace = small_trace();
        let (cal, val) = trace.split(0.6);
        assert_eq!(cal.len() + val.len(), trace.len());
        assert!(cal.len() > val.len());
        // No job appears in both halves.
        let cal_ids: std::collections::HashSet<_> = cal.jobs.iter().map(|j| j.id).collect();
        assert!(val.jobs.iter().all(|j| !cal_ids.contains(&j.id)));
    }

    #[test]
    fn summary_reports_sane_numbers() {
        let trace = small_trace();
        let s = trace.summary();
        assert_eq!(s.job_count, 500);
        assert_eq!(s.site_count, 4);
        assert!(s.work.mean > 0.0);
        assert!(s.hist_walltime.unwrap().mean > 0.0);
    }

    #[test]
    fn jsonl_roundtrip() {
        let trace = small_trace();
        let path = std::env::temp_dir().join("cgsim-trace-roundtrip.jsonl");
        trace.save_jsonl(&path).unwrap();
        let loaded = Trace::load_jsonl(&path).unwrap();
        assert_eq!(trace.jobs, loaded.jobs);
        assert_eq!(
            trace.hidden_site_multipliers.len(),
            loaded.hidden_site_multipliers.len()
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let trace = small_trace();
        let csv = trace.to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), trace.len() + 1);
        assert!(lines[0].starts_with("job_id,task_id,kind"));
        assert!(lines[1].contains("646")); // PanDA-style id prefix
    }

    #[test]
    fn site_names_lists_distinct_sites() {
        let trace = small_trace();
        let names = trace.site_names();
        assert_eq!(names.len(), 4);
        assert!(names.contains(&"BNL".to_string()));
    }
}
