//! Fault plans: deterministic, time-sorted schedules of infrastructure
//! faults generated from a seed.
//!
//! A [`FaultPlan`] is generated **before** the simulation starts, from a
//! [`FaultPlanConfig`] plus a [`FaultTopology`] describing how many sites,
//! links and jobs the scenario has. Generation draws every random quantity
//! from an independent stream of the deterministic `cgsim_des::rng::Rng` per
//! (spec, target) pair, each derived from the seed and the pair's identity
//! alone, so the schedule is a pure function of `(config, topology, seed)` —
//! the same reproducibility contract as the rest of CGSim-RS — and adding
//! one fault process never perturbs another's schedule. The simulation core
//! then replays the plan as ordinary discrete events; it never draws fault
//! randomness itself.
//!
//! Inter-failure times follow a Weibull distribution (`shape = 1` is the
//! exponential special case; `shape > 1` models wear-out, `shape < 1`
//! infant-mortality clustering), matching the standard reliability-modelling
//! practice of grid/cloud simulators.

use cgsim_des::rng::Rng;
use serde::{Deserialize, Serialize};

/// Default generation horizon: 48 simulated hours.
pub const DEFAULT_HORIZON_S: f64 = 48.0 * 3600.0;

/// Which sites a fault specification targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteSelector {
    /// Every site of the platform.
    All,
    /// One site, by `SiteId` index.
    Index(usize),
}

/// Which links a degradation specification targets. Indices refer to the
/// *eligible link list* of the [`FaultTopology`] (for the CLI this is the
/// platform's WAN links, in platform order), not to raw platform link ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkSelector {
    /// Every eligible link.
    All,
    /// The i-th eligible link.
    Index(usize),
}

/// Random whole-site outages with Weibull inter-failure times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutageSpec {
    /// Targeted site(s).
    pub site: SiteSelector,
    /// Mean time to failure in seconds (Weibull scale is derived from it).
    pub mttf_s: f64,
    /// Mean time to repair in seconds (exponential).
    pub mttr_s: f64,
    /// Weibull shape of the inter-failure distribution (1 = exponential).
    pub shape: f64,
}

/// A fixed maintenance window (optionally periodic): the site is down for
/// `duration_s` starting at `start_s`, repeating every `period_s` if set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceSpec {
    /// Targeted site.
    pub site: usize,
    /// First window start, seconds from simulation start.
    pub start_s: f64,
    /// Window length in seconds.
    pub duration_s: f64,
    /// Repetition period in seconds (`None` = one window only).
    pub period_s: Option<f64>,
}

/// Correlated multi-site incidents: all listed sites fail together (a shared
/// power/network domain), recover together after the repair time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentSpec {
    /// Sites failing together.
    pub sites: Vec<usize>,
    /// Mean time between incidents in seconds.
    pub mttf_s: f64,
    /// Mean repair time in seconds.
    pub mttr_s: f64,
    /// Weibull shape of the inter-incident distribution.
    pub shape: f64,
}

/// Partial node loss: a fraction of a site's cores disappears (a rack or a
/// worker-node group), later restored.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeLossSpec {
    /// Targeted site(s).
    pub site: SiteSelector,
    /// Fraction of the site's cores lost, in `(0, 1]`.
    pub fraction: f64,
    /// Mean time to loss in seconds.
    pub mttf_s: f64,
    /// Mean time to restoration in seconds.
    pub mttr_s: f64,
}

/// Storage-media loss: the disks backing a site's storage element fail and
/// every byte held there — staged replicas, cache entries and job
/// checkpoints — is lost, while the site itself keeps computing. Unlike an
/// outage there is no repair event: the loss is instantaneous and the data
/// is simply gone (the replacement hardware comes up empty).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskLossSpec {
    /// Targeted site(s).
    pub site: SiteSelector,
    /// Mean time to disk loss in seconds (exponential).
    pub mttf_s: f64,
}

/// Link bandwidth degradation: the link runs at `factor` of its nominal
/// bandwidth until restored.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationSpec {
    /// Targeted link(s).
    pub link: LinkSelector,
    /// Remaining bandwidth fraction in `(0, 1)` while degraded.
    pub factor: f64,
    /// Mean time to degradation in seconds.
    pub mttf_s: f64,
    /// Mean time to restoration in seconds.
    pub mttr_s: f64,
    /// Weibull shape of the inter-degradation distribution.
    pub shape: f64,
}

/// Everything the plan generator needs to know about the fault processes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// Generation horizon in seconds; no fault is scheduled past it.
    pub horizon_s: f64,
    /// Random whole-site outage processes.
    pub outages: Vec<OutageSpec>,
    /// Fixed maintenance windows.
    pub maintenance: Vec<MaintenanceSpec>,
    /// Correlated multi-site incident processes.
    pub incidents: Vec<IncidentSpec>,
    /// Partial node-loss processes.
    pub node_losses: Vec<NodeLossSpec>,
    /// Storage-media loss processes (data loss without a site outage).
    /// Absent from configurations written before checkpoint/restart existed,
    /// hence the serde default.
    #[serde(default)]
    pub disk_losses: Vec<DiskLossSpec>,
    /// Link-degradation processes.
    pub degradations: Vec<DegradationSpec>,
    /// Poisson rate of single-job kills, per simulated hour (0 = none).
    pub kill_rate_per_hour: f64,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            horizon_s: DEFAULT_HORIZON_S,
            outages: Vec::new(),
            maintenance: Vec::new(),
            incidents: Vec::new(),
            node_losses: Vec::new(),
            disk_losses: Vec::new(),
            degradations: Vec::new(),
            kill_rate_per_hour: 0.0,
        }
    }
}

impl FaultPlanConfig {
    /// True when the configuration describes no fault process at all (the
    /// generated plan is guaranteed empty).
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
            && self.maintenance.is_empty()
            && self.incidents.is_empty()
            && self.node_losses.is_empty()
            && self.disk_losses.is_empty()
            && self.degradations.is_empty()
            && self.kill_rate_per_hour <= 0.0
    }
}

/// The scenario dimensions a plan is generated against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultTopology {
    /// Number of sites (`SiteId` indices `0..sites`).
    pub sites: usize,
    /// Platform link indices eligible for degradation (typically the WAN
    /// links), in platform order. [`LinkSelector::Index`] indexes this list.
    pub links: Vec<usize>,
    /// Number of jobs in the trace (`KillJob` targets indices `0..jobs`).
    pub jobs: usize,
}

impl FaultTopology {
    /// The topology of a resolved platform running a trace of `jobs` jobs:
    /// every site, with the platform's WAN links (not the generated
    /// site-internal LANs) as the degradation-eligible list. This is the
    /// resolution rule behind the CLI's `link=<i>` selector.
    pub fn for_platform(platform: &cgsim_platform::Platform, jobs: usize) -> Self {
        FaultTopology {
            sites: platform.site_count(),
            links: platform
                .links()
                .iter()
                .filter(|l| !l.is_lan)
                .map(|l| l.id.index())
                .collect(),
            jobs,
        }
    }
}

/// One scheduled fault, applied by the simulation core at `time_s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultAction {
    /// The whole site goes down: running jobs are killed, queued jobs are
    /// bounced back to the main server, staged replicas are invalidated.
    SiteDown {
        /// Site index.
        site: usize,
    },
    /// The site recovers and accepts work again.
    SiteUp {
        /// Site index.
        site: usize,
    },
    /// A fraction of the site's cores disappears.
    NodeLoss {
        /// Site index.
        site: usize,
        /// Fraction of total cores lost, in `(0, 1]`.
        fraction: f64,
    },
    /// The most recent outstanding node loss at the site ends and its cores
    /// come back (losses from overlapping processes stack).
    NodeRestore {
        /// Site index.
        site: usize,
    },
    /// The site's storage media fail: staged replicas, cache entries and job
    /// checkpoints held there are lost. The site keeps computing; there is no
    /// matching recovery event (the data is gone, not unavailable).
    DiskLoss {
        /// Site index.
        site: usize,
    },
    /// The link drops to `factor` of its nominal bandwidth; in-flight
    /// transfers are re-rated through the fluid model.
    LinkDegrade {
        /// Platform link index.
        link: usize,
        /// Remaining bandwidth fraction in `(0, 1)`.
        factor: f64,
    },
    /// The link returns to nominal bandwidth.
    LinkRestore {
        /// Platform link index.
        link: usize,
    },
    /// Kill one specific job if it is currently occupying cores.
    KillJob {
        /// Job index into the trace.
        job: usize,
    },
}

/// A fault action bound to its virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Virtual time of the fault, seconds from simulation start.
    pub time_s: f64,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic, time-sorted schedule of fault events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Events sorted by `time_s` (ties keep generation order).
    pub events: Vec<FaultEvent>,
}

/// Stream-id salts keeping every fault process on an independent RNG stream.
mod stream {
    pub const OUTAGE: u64 = 1 << 32;
    pub const INCIDENT: u64 = 2 << 32;
    pub const NODELOSS: u64 = 3 << 32;
    pub const DEGRADE: u64 = 4 << 32;
    pub const KILL: u64 = 5 << 32;
    pub const DISKLOSS: u64 = 6 << 32;
}

impl FaultPlan {
    /// A plan with no events (attached to a simulation it is exactly
    /// equivalent to attaching no plan at all).
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of a given kind (by discriminant name), for tests and reports.
    pub fn count_site_downs(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.action, FaultAction::SiteDown { .. }))
            .count()
    }

    /// Generates the deterministic schedule for `config` against `topo`.
    ///
    /// Every `(spec, target)` pair draws from its own RNG stream derived
    /// *only* from the seed and the pair's identity — never from how many
    /// other streams exist — so adding a spec (or growing the topology)
    /// never perturbs the schedule of another process, and the whole plan
    /// is reproducible from the seed alone.
    pub fn generate(config: &FaultPlanConfig, topo: &FaultTopology, seed: u64) -> Self {
        let horizon = config.horizon_s.max(0.0);
        let mut events: Vec<FaultEvent> = Vec::new();

        // Random whole-site outages.
        for (spec_idx, spec) in config.outages.iter().enumerate() {
            for site in select_sites(spec.site, topo.sites) {
                let mut rng =
                    stream_rng(seed, stream::OUTAGE | (spec_idx as u64) << 16 | site as u64);
                let scale = weibull_scale(spec.mttf_s, spec.shape);
                let mut t = 0.0;
                loop {
                    t += rng.weibull(scale, spec.shape);
                    if t > horizon {
                        break;
                    }
                    let repair = rng.exponential(1.0 / spec.mttr_s.max(1e-9));
                    events.push(FaultEvent {
                        time_s: t,
                        action: FaultAction::SiteDown { site },
                    });
                    events.push(FaultEvent {
                        time_s: t + repair,
                        action: FaultAction::SiteUp { site },
                    });
                    t += repair;
                }
            }
        }

        // Fixed maintenance windows (no randomness).
        for spec in &config.maintenance {
            if spec.site >= topo.sites || spec.duration_s <= 0.0 {
                continue;
            }
            let mut start = spec.start_s;
            loop {
                if start > horizon {
                    break;
                }
                events.push(FaultEvent {
                    time_s: start,
                    action: FaultAction::SiteDown { site: spec.site },
                });
                events.push(FaultEvent {
                    time_s: start + spec.duration_s,
                    action: FaultAction::SiteUp { site: spec.site },
                });
                match spec.period_s {
                    Some(period) if period > 0.0 => start += period,
                    _ => break,
                }
            }
        }

        // Correlated multi-site incidents: one stream per spec, all listed
        // sites fail and recover at the same instants.
        for (spec_idx, spec) in config.incidents.iter().enumerate() {
            let sites: Vec<usize> = spec
                .sites
                .iter()
                .copied()
                .filter(|&s| s < topo.sites)
                .collect();
            if sites.is_empty() {
                continue;
            }
            let mut rng = stream_rng(seed, stream::INCIDENT | spec_idx as u64);
            let scale = weibull_scale(spec.mttf_s, spec.shape);
            let mut t = 0.0;
            loop {
                t += rng.weibull(scale, spec.shape);
                if t > horizon {
                    break;
                }
                let repair = rng.exponential(1.0 / spec.mttr_s.max(1e-9));
                for &site in &sites {
                    events.push(FaultEvent {
                        time_s: t,
                        action: FaultAction::SiteDown { site },
                    });
                    events.push(FaultEvent {
                        time_s: t + repair,
                        action: FaultAction::SiteUp { site },
                    });
                }
                t += repair;
            }
        }

        // Partial node losses.
        for (spec_idx, spec) in config.node_losses.iter().enumerate() {
            let fraction = spec.fraction.clamp(0.0, 1.0);
            if fraction <= 0.0 {
                continue;
            }
            for site in select_sites(spec.site, topo.sites) {
                let mut rng = stream_rng(
                    seed,
                    stream::NODELOSS | (spec_idx as u64) << 16 | site as u64,
                );
                let mut t = 0.0;
                loop {
                    t += rng.exponential(1.0 / spec.mttf_s.max(1e-9));
                    if t > horizon {
                        break;
                    }
                    let repair = rng.exponential(1.0 / spec.mttr_s.max(1e-9));
                    events.push(FaultEvent {
                        time_s: t,
                        action: FaultAction::NodeLoss { site, fraction },
                    });
                    events.push(FaultEvent {
                        time_s: t + repair,
                        action: FaultAction::NodeRestore { site },
                    });
                    t += repair;
                }
            }
        }

        // Storage-media losses: an exponential process per (spec, site), one
        // event per loss — data loss is instantaneous and unrepaired, so no
        // paired recovery event is generated.
        for (spec_idx, spec) in config.disk_losses.iter().enumerate() {
            for site in select_sites(spec.site, topo.sites) {
                let mut rng = stream_rng(
                    seed,
                    stream::DISKLOSS | (spec_idx as u64) << 16 | site as u64,
                );
                let mut t = 0.0;
                loop {
                    t += rng.exponential(1.0 / spec.mttf_s.max(1e-9));
                    if t > horizon {
                        break;
                    }
                    events.push(FaultEvent {
                        time_s: t,
                        action: FaultAction::DiskLoss { site },
                    });
                }
            }
        }

        // Link degradations.
        for (spec_idx, spec) in config.degradations.iter().enumerate() {
            let factor = spec.factor.clamp(1e-6, 1.0);
            let targets: Vec<usize> = match spec.link {
                LinkSelector::All => topo.links.clone(),
                LinkSelector::Index(i) => topo.links.get(i).copied().into_iter().collect(),
            };
            for (pos, link) in targets.into_iter().enumerate() {
                let mut rng =
                    stream_rng(seed, stream::DEGRADE | (spec_idx as u64) << 16 | pos as u64);
                let scale = weibull_scale(spec.mttf_s, spec.shape);
                let mut t = 0.0;
                loop {
                    t += rng.weibull(scale, spec.shape);
                    if t > horizon {
                        break;
                    }
                    let repair = rng.exponential(1.0 / spec.mttr_s.max(1e-9));
                    events.push(FaultEvent {
                        time_s: t,
                        action: FaultAction::LinkDegrade { link, factor },
                    });
                    events.push(FaultEvent {
                        time_s: t + repair,
                        action: FaultAction::LinkRestore { link },
                    });
                    t += repair;
                }
            }
        }

        // Single-job kills: a Poisson process over the horizon, each event
        // targeting a uniformly random trace index (a no-op at replay time if
        // that job is not occupying cores at that instant).
        if config.kill_rate_per_hour > 0.0 && topo.jobs > 0 {
            let mut rng = stream_rng(seed, stream::KILL);
            let rate_per_s = config.kill_rate_per_hour / 3600.0;
            let mut t = 0.0;
            loop {
                t += rng.exponential(rate_per_s);
                if t > horizon {
                    break;
                }
                events.push(FaultEvent {
                    time_s: t,
                    action: FaultAction::KillJob {
                        job: rng.index(topo.jobs),
                    },
                });
            }
        }

        // Stable sort: equal times keep generation order, which is itself
        // deterministic, so the whole schedule is reproducible.
        events.sort_by(|a, b| {
            a.time_s
                .partial_cmp(&b.time_s)
                .expect("fault times are finite")
        });
        FaultPlan { events }
    }
}

/// An independent RNG stream for one `(seed, salt)` pair. Pure function of
/// its inputs — unlike `Rng::fork`, which advances the parent and would make
/// every stream depend on the count and order of earlier forks (so adding a
/// spec would reshuffle every later process's schedule).
fn stream_rng(seed: u64, salt: u64) -> Rng {
    Rng::new(seed ^ 0xFA17_5EED ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Resolves a site selector against the topology.
fn select_sites(selector: SiteSelector, sites: usize) -> Vec<usize> {
    match selector {
        SiteSelector::All => (0..sites).collect(),
        SiteSelector::Index(i) if i < sites => vec![i],
        SiteSelector::Index(_) => Vec::new(),
    }
}

/// Weibull scale parameter giving the requested mean for the given shape:
/// `mean = scale * Γ(1 + 1/shape)`.
fn weibull_scale(mean: f64, shape: f64) -> f64 {
    let shape = shape.max(1e-3);
    mean.max(1e-9) / gamma(1.0 + 1.0 / shape)
}

/// Lanczos approximation of the gamma function (positive arguments only; the
/// plan generator calls it with arguments in `(1, 1000]`).
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x));
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> FaultTopology {
        FaultTopology {
            sites: 4,
            links: vec![4, 5, 6, 7],
            jobs: 100,
        }
    }

    fn outage_config() -> FaultPlanConfig {
        FaultPlanConfig {
            horizon_s: 100_000.0,
            outages: vec![OutageSpec {
                site: SiteSelector::All,
                mttf_s: 10_000.0,
                mttr_s: 1_000.0,
                shape: 1.0,
            }],
            ..FaultPlanConfig::default()
        }
    }

    #[test]
    fn gamma_matches_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-9);
        assert!((gamma(2.0) - 1.0).abs() < 1e-9);
        assert!((gamma(5.0) - 24.0).abs() < 1e-6);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn empty_config_generates_empty_plan() {
        let plan = FaultPlan::generate(&FaultPlanConfig::default(), &topo(), 7);
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert!(FaultPlanConfig::default().is_empty());
        assert!(!outage_config().is_empty());
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = FaultPlan::generate(&outage_config(), &topo(), 7);
        let b = FaultPlan::generate(&outage_config(), &topo(), 7);
        let c = FaultPlan::generate(&outage_config(), &topo(), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn streams_are_isolated_across_specs() {
        // Adding a degradation + kill process must not perturb the outage
        // schedule: the outage events of the combined plan are exactly the
        // outage-only plan.
        let outages_only = FaultPlan::generate(&outage_config(), &topo(), 7);
        let mut combined_cfg = outage_config();
        combined_cfg.degradations.push(DegradationSpec {
            link: LinkSelector::All,
            factor: 0.5,
            mttf_s: 5_000.0,
            mttr_s: 500.0,
            shape: 1.0,
        });
        combined_cfg.kill_rate_per_hour = 3.0;
        let combined = FaultPlan::generate(&combined_cfg, &topo(), 7);
        let site_events = |plan: &FaultPlan| {
            plan.events
                .iter()
                .filter(|e| {
                    matches!(
                        e.action,
                        FaultAction::SiteDown { .. } | FaultAction::SiteUp { .. }
                    )
                })
                .copied()
                .collect::<Vec<_>>()
        };
        assert_eq!(site_events(&outages_only), site_events(&combined));
        assert!(combined.len() > outages_only.len());
    }

    #[test]
    fn events_are_time_sorted_and_within_horizon_for_downs() {
        let plan = FaultPlan::generate(&outage_config(), &topo(), 3);
        for pair in plan.events.windows(2) {
            assert!(pair[0].time_s <= pair[1].time_s);
        }
        for e in &plan.events {
            if let FaultAction::SiteDown { site } = e.action {
                assert!(site < 4);
                assert!(e.time_s <= 100_000.0);
            }
        }
    }

    #[test]
    fn downs_and_ups_pair_per_site() {
        let plan = FaultPlan::generate(&outage_config(), &topo(), 11);
        for site in 0..4 {
            let downs = plan
                .events
                .iter()
                .filter(|e| e.action == FaultAction::SiteDown { site })
                .count();
            let ups = plan
                .events
                .iter()
                .filter(|e| e.action == FaultAction::SiteUp { site })
                .count();
            assert_eq!(downs, ups, "site {site}");
        }
    }

    #[test]
    fn outage_rate_tracks_mttf() {
        // With mttf 10_000 s over a 1_000_000 s horizon and ~10% downtime,
        // each site should see roughly horizon / (mttf + mttr) ≈ 90 outages.
        let mut cfg = outage_config();
        cfg.horizon_s = 1_000_000.0;
        let plan = FaultPlan::generate(&cfg, &topo(), 5);
        let downs = plan.count_site_downs() as f64 / 4.0;
        assert!(
            (60.0..130.0).contains(&downs),
            "mean outages per site: {downs}"
        );
    }

    #[test]
    fn maintenance_windows_repeat_until_horizon() {
        let cfg = FaultPlanConfig {
            horizon_s: 10_000.0,
            maintenance: vec![MaintenanceSpec {
                site: 1,
                start_s: 1_000.0,
                duration_s: 500.0,
                period_s: Some(3_000.0),
            }],
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(&cfg, &topo(), 1);
        // Windows at 1000, 4000, 7000, 10000.
        assert_eq!(plan.count_site_downs(), 4);
        assert_eq!(plan.events[0].time_s, 1_000.0);
        assert_eq!(plan.events[0].action, FaultAction::SiteDown { site: 1 });
        assert_eq!(plan.events[1].action, FaultAction::SiteUp { site: 1 });
    }

    #[test]
    fn incidents_fail_all_listed_sites_together() {
        let cfg = FaultPlanConfig {
            horizon_s: 50_000.0,
            incidents: vec![IncidentSpec {
                sites: vec![0, 2],
                mttf_s: 10_000.0,
                mttr_s: 500.0,
                shape: 1.5,
            }],
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(&cfg, &topo(), 13);
        let downs: Vec<&FaultEvent> = plan
            .events
            .iter()
            .filter(|e| matches!(e.action, FaultAction::SiteDown { .. }))
            .collect();
        assert!(!downs.is_empty());
        // Down events come in same-time pairs covering sites 0 and 2.
        for chunk in downs.chunks(2) {
            assert_eq!(chunk.len(), 2);
            assert_eq!(chunk[0].time_s, chunk[1].time_s);
        }
    }

    #[test]
    fn degradations_target_eligible_links_only() {
        let cfg = FaultPlanConfig {
            horizon_s: 100_000.0,
            degradations: vec![DegradationSpec {
                link: LinkSelector::All,
                factor: 0.25,
                mttf_s: 20_000.0,
                mttr_s: 2_000.0,
                shape: 1.0,
            }],
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(&cfg, &topo(), 21);
        let mut saw = false;
        for e in &plan.events {
            if let FaultAction::LinkDegrade { link, factor } = e.action {
                assert!(topo().links.contains(&link));
                assert_eq!(factor, 0.25);
                saw = true;
            }
        }
        assert!(saw);
    }

    #[test]
    fn kills_target_trace_indices() {
        let cfg = FaultPlanConfig {
            horizon_s: 36_000.0,
            kill_rate_per_hour: 2.0,
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(&cfg, &topo(), 2);
        let kills = plan
            .events
            .iter()
            .filter_map(|e| match e.action {
                FaultAction::KillJob { job } => Some(job),
                _ => None,
            })
            .collect::<Vec<_>>();
        assert!(!kills.is_empty());
        assert!(kills.iter().all(|&j| j < 100));
        // ~2/hour over 10 hours ≈ 20 kills.
        assert!((5..=60).contains(&kills.len()), "kills: {}", kills.len());
    }

    #[test]
    fn disk_losses_are_unpaired_and_within_horizon() {
        let cfg = FaultPlanConfig {
            horizon_s: 200_000.0,
            disk_losses: vec![DiskLossSpec {
                site: SiteSelector::All,
                mttf_s: 20_000.0,
            }],
            ..FaultPlanConfig::default()
        };
        assert!(!cfg.is_empty());
        let plan = FaultPlan::generate(&cfg, &topo(), 17);
        assert!(!plan.is_empty());
        for e in &plan.events {
            let FaultAction::DiskLoss { site } = e.action else {
                panic!("only disk losses expected, got {:?}", e.action);
            };
            assert!(site < 4);
            assert!(e.time_s <= 200_000.0);
        }
        // ~10 losses per site over 10 MTTFs.
        let per_site = plan.events.len() as f64 / 4.0;
        assert!((4.0..25.0).contains(&per_site), "losses/site: {per_site}");
    }

    #[test]
    fn out_of_range_targets_are_dropped() {
        let cfg = FaultPlanConfig {
            horizon_s: 50_000.0,
            outages: vec![OutageSpec {
                site: SiteSelector::Index(99),
                mttf_s: 1_000.0,
                mttr_s: 100.0,
                shape: 1.0,
            }],
            maintenance: vec![MaintenanceSpec {
                site: 99,
                start_s: 0.0,
                duration_s: 10.0,
                period_s: None,
            }],
            ..FaultPlanConfig::default()
        };
        assert!(FaultPlan::generate(&cfg, &topo(), 1).is_empty());
    }

    #[test]
    fn plan_serialises_and_roundtrips() {
        let plan = FaultPlan::generate(&outage_config(), &topo(), 9);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
