//! # cgsim-faults — deterministic fault injection
//!
//! The simulator models a perfect grid unless told otherwise; this crate is
//! the "otherwise". It turns a seeded configuration into a deterministic,
//! time-sorted schedule of infrastructure faults — whole-site outages and
//! recoveries (random, fixed maintenance windows, or correlated multi-site
//! incidents), partial node loss, link bandwidth degradation, and single-job
//! kills — that the simulation core replays as ordinary discrete events.
//!
//! The key property is reproducibility: a [`FaultPlan`] is a pure function of
//! `(FaultPlanConfig, FaultTopology, seed)`, generated *before* the run from
//! per-process streams of the deterministic `cgsim_des` RNG. Attaching an empty
//! plan is bit-for-bit identical to attaching no plan, and the same seed +
//! spec always produces the same schedule — which is what lets the CI
//! determinism gate cover faulted scenarios exactly like fair-weather ones.
//!
//! [`spec::parse_fault_spec`] parses the compact `--faults` command-line
//! grammar (`outage:site=2,mttf=4h,mttr=30m;kill:rate=1`) into a
//! [`FaultPlanConfig`]; see the module docs for the full grammar.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod plan;
pub mod spec;

pub use plan::{
    DegradationSpec, DiskLossSpec, FaultAction, FaultEvent, FaultPlan, FaultPlanConfig,
    FaultTopology, IncidentSpec, LinkSelector, MaintenanceSpec, NodeLossSpec, OutageSpec,
    SiteSelector, DEFAULT_HORIZON_S,
};
pub use spec::{parse_duration, parse_fault_spec};
