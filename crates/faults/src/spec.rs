//! The `--faults` command-line specification grammar.
//!
//! A spec is a semicolon-separated list of clauses, each clause a fault
//! process `kind:key=value,key=value,...`:
//!
//! ```text
//! outage:site=2,mttf=4h,mttr=30m[,shape=1.5]     random whole-site outages
//! outage:site=all,mttf=12h,mttr=20m              ... for every site
//! maint:site=1,start=6h,duration=1h[,period=24h] fixed maintenance windows
//! incident:sites=0+2,mttf=24h,mttr=45m[,shape=2] correlated multi-site incidents
//! nodeloss:site=0,fraction=0.25,mttf=8h,mttr=1h  partial node loss
//! diskloss:site=1,mttf=24h                       storage-media loss (data gone)
//! degrade:link=all,factor=0.3,mttf=6h,mttr=15m   link bandwidth degradation
//! kill:rate=1.5                                  job kills per simulated hour
//! horizon=48h                                    generation horizon
//! ```
//!
//! Durations accept the suffixes `s`, `m`, `h`, `d` (plain numbers are
//! seconds). `site=all` targets every site; `link=all` targets every WAN
//! link; `link=<i>` is the i-th WAN link in platform order.

use crate::plan::{
    DegradationSpec, DiskLossSpec, FaultPlanConfig, IncidentSpec, LinkSelector, MaintenanceSpec,
    NodeLossSpec, OutageSpec, SiteSelector,
};

/// Parses a `--faults` specification string into a plan configuration.
pub fn parse_fault_spec(spec: &str) -> Result<FaultPlanConfig, String> {
    let mut config = FaultPlanConfig::default();
    for raw_clause in spec.split(';') {
        let clause = raw_clause.trim();
        if clause.is_empty() {
            continue;
        }
        if let Some(value) = clause.strip_prefix("horizon=") {
            config.horizon_s = parse_duration(value)?;
            continue;
        }
        let (kind, body) = clause
            .split_once(':')
            .ok_or_else(|| format!("clause '{clause}' is missing its 'kind:' prefix"))?;
        let kvs = parse_kvs(body, clause)?;
        match kind.trim() {
            "outage" => config.outages.push(OutageSpec {
                site: parse_site_selector(require(&kvs, "site", clause)?)?,
                mttf_s: positive_duration(require(&kvs, "mttf", clause)?, "mttf")?,
                mttr_s: positive_duration(require(&kvs, "mttr", clause)?, "mttr")?,
                shape: optional_shape(&kvs)?,
            }),
            "maint" => config.maintenance.push(MaintenanceSpec {
                site: parse_index(require(&kvs, "site", clause)?)?,
                start_s: parse_duration(require(&kvs, "start", clause)?)?,
                duration_s: parse_duration(require(&kvs, "duration", clause)?)?,
                period_s: lookup(&kvs, "period")
                    .map(|v| positive_duration(v, "period"))
                    .transpose()?,
            }),
            "incident" => config.incidents.push(IncidentSpec {
                sites: parse_site_list(require(&kvs, "sites", clause)?)?,
                mttf_s: positive_duration(require(&kvs, "mttf", clause)?, "mttf")?,
                mttr_s: positive_duration(require(&kvs, "mttr", clause)?, "mttr")?,
                shape: optional_shape(&kvs)?,
            }),
            "nodeloss" => config.node_losses.push(NodeLossSpec {
                site: parse_site_selector(require(&kvs, "site", clause)?)?,
                fraction: parse_fraction(require(&kvs, "fraction", clause)?)?,
                mttf_s: positive_duration(require(&kvs, "mttf", clause)?, "mttf")?,
                mttr_s: positive_duration(require(&kvs, "mttr", clause)?, "mttr")?,
            }),
            "diskloss" => config.disk_losses.push(DiskLossSpec {
                site: parse_site_selector(require(&kvs, "site", clause)?)?,
                mttf_s: positive_duration(require(&kvs, "mttf", clause)?, "mttf")?,
            }),
            "degrade" => config.degradations.push(DegradationSpec {
                link: parse_link_selector(require(&kvs, "link", clause)?)?,
                factor: parse_fraction(require(&kvs, "factor", clause)?)?,
                mttf_s: positive_duration(require(&kvs, "mttf", clause)?, "mttf")?,
                mttr_s: positive_duration(require(&kvs, "mttr", clause)?, "mttr")?,
                shape: optional_shape(&kvs)?,
            }),
            "kill" => {
                let rate: f64 = require(&kvs, "rate", clause)?
                    .parse()
                    .map_err(|_| format!("kill rate is not a number in '{clause}'"))?;
                if !rate.is_finite() || rate < 0.0 {
                    return Err(format!(
                        "kill rate must be a non-negative number, got {rate}"
                    ));
                }
                config.kill_rate_per_hour = rate;
            }
            other => {
                return Err(format!(
                    "unknown fault kind '{other}' (expected outage, maint, incident, \
                     nodeloss, diskloss, degrade, kill or horizon=<dur>)"
                ))
            }
        }
    }
    Ok(config)
}

/// Splits `key=value,key=value` into pairs, rejecting duplicate keys — a
/// repeated key is almost always a typo (the last value would silently win
/// or lose depending on lookup order), so it fails loudly instead.
fn parse_kvs<'a>(body: &'a str, clause: &str) -> Result<Vec<(&'a str, &'a str)>, String> {
    let kvs: Vec<(&str, &str)> = body
        .split(',')
        .filter(|part| !part.trim().is_empty())
        .map(|part| {
            part.split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| format!("expected key=value, found '{part}' in '{clause}'"))
        })
        .collect::<Result<_, _>>()?;
    for (i, (key, _)) in kvs.iter().enumerate() {
        if kvs[..i].iter().any(|(k, _)| k == key) {
            return Err(format!(
                "duplicate key '{key}' in '{clause}' (each key may appear once per clause)"
            ));
        }
    }
    Ok(kvs)
}

fn lookup<'a>(kvs: &[(&'a str, &'a str)], key: &str) -> Option<&'a str> {
    kvs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn require<'a>(kvs: &[(&'a str, &'a str)], key: &str, clause: &str) -> Result<&'a str, String> {
    lookup(kvs, key).ok_or_else(|| format!("clause '{clause}' is missing '{key}='"))
}

fn optional_f64(kvs: &[(&str, &str)], key: &str) -> Result<Option<f64>, String> {
    match lookup(kvs, key) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("'{key}={v}' is not a number")),
    }
}

/// The optional Weibull `shape` parameter of a clause (default 1.0 =
/// exponential). Shape must be strictly positive: zero or negative shapes
/// have no Weibull meaning and would make the sampler produce nonsense (or
/// worse) deep inside plan generation, far from the typo that caused them.
fn optional_shape(kvs: &[(&str, &str)]) -> Result<f64, String> {
    let shape = optional_f64(kvs, "shape")?.unwrap_or(1.0);
    if !shape.is_finite() || shape <= 0.0 {
        return Err(format!(
            "shape must be a positive number, got {shape} (1.0 = exponential; \
             >1 wear-out, <1 infant-mortality failures)"
        ));
    }
    Ok(shape)
}

/// A duration that must be strictly positive: MTTF/MTTR/period values of 0
/// would ask the plan generator for infinitely many events (a zero mean
/// time between failures = failures always), so they are rejected here with
/// the offending key named rather than hanging generation later.
fn positive_duration(text: &str, key: &str) -> Result<f64, String> {
    let value = parse_duration(text)?;
    if value <= 0.0 {
        return Err(format!(
            "'{key}={text}' must be a positive duration (got {value}s; use a value > 0)"
        ));
    }
    Ok(value)
}

/// Parses a duration: a number with an optional `s`/`m`/`h`/`d` suffix
/// (plain numbers are seconds). Shared with the CLI's checkpoint-interval
/// flag, hence public.
pub fn parse_duration(text: &str) -> Result<f64, String> {
    let text = text.trim();
    let (number, multiplier) = match text.chars().last() {
        Some('s') => (&text[..text.len() - 1], 1.0),
        Some('m') => (&text[..text.len() - 1], 60.0),
        Some('h') => (&text[..text.len() - 1], 3600.0),
        Some('d') => (&text[..text.len() - 1], 86_400.0),
        _ => (text, 1.0),
    };
    let value: f64 = number
        .parse()
        .map_err(|_| format!("'{text}' is not a duration (number with optional s/m/h/d)"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("duration '{text}' must be non-negative and finite"));
    }
    Ok(value * multiplier)
}

fn parse_index(text: &str) -> Result<usize, String> {
    text.parse()
        .map_err(|_| format!("'{text}' is not a site index"))
}

fn parse_site_selector(text: &str) -> Result<SiteSelector, String> {
    if text == "all" {
        Ok(SiteSelector::All)
    } else {
        parse_index(text).map(SiteSelector::Index)
    }
}

fn parse_link_selector(text: &str) -> Result<LinkSelector, String> {
    if text == "all" {
        Ok(LinkSelector::All)
    } else {
        text.parse()
            .map(LinkSelector::Index)
            .map_err(|_| format!("'{text}' is not a link index"))
    }
}

/// Parses `0+2+5` into `[0, 2, 5]`.
fn parse_site_list(text: &str) -> Result<Vec<usize>, String> {
    text.split('+')
        .map(|part| parse_index(part.trim()))
        .collect()
}

fn parse_fraction(text: &str) -> Result<f64, String> {
    let value: f64 = text
        .parse()
        .map_err(|_| format!("'{text}' is not a fraction"))?;
    if !(0.0..=1.0).contains(&value) {
        return Err(format!("fraction '{text}' must be in [0, 1]"));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grammar_parses() {
        let config = parse_fault_spec(
            "outage:site=2,mttf=4h,mttr=30m,shape=1.5;\
             maint:site=1,start=6h,duration=1h,period=24h;\
             incident:sites=0+2,mttf=24h,mttr=45m;\
             nodeloss:site=0,fraction=0.25,mttf=8h,mttr=1h;\
             diskloss:site=all,mttf=36h;\
             degrade:link=all,factor=0.3,mttf=6h,mttr=15m;\
             kill:rate=1.5;horizon=2d",
        )
        .unwrap();
        assert_eq!(config.outages.len(), 1);
        assert_eq!(config.outages[0].site, SiteSelector::Index(2));
        assert_eq!(config.outages[0].mttf_s, 4.0 * 3600.0);
        assert_eq!(config.outages[0].mttr_s, 1800.0);
        assert_eq!(config.outages[0].shape, 1.5);
        assert_eq!(config.maintenance[0].period_s, Some(86_400.0));
        assert_eq!(config.incidents[0].sites, vec![0, 2]);
        assert_eq!(config.incidents[0].shape, 1.0);
        assert_eq!(config.node_losses[0].fraction, 0.25);
        assert_eq!(config.disk_losses[0].site, SiteSelector::All);
        assert_eq!(config.disk_losses[0].mttf_s, 36.0 * 3600.0);
        assert_eq!(config.degradations[0].link, LinkSelector::All);
        assert_eq!(config.degradations[0].factor, 0.3);
        assert_eq!(config.kill_rate_per_hour, 1.5);
        assert_eq!(config.horizon_s, 2.0 * 86_400.0);
    }

    #[test]
    fn site_all_and_plain_seconds() {
        let config = parse_fault_spec("outage:site=all,mttf=4000,mttr=600").unwrap();
        assert_eq!(config.outages[0].site, SiteSelector::All);
        assert_eq!(config.outages[0].mttf_s, 4000.0);
        assert_eq!(config.horizon_s, crate::plan::DEFAULT_HORIZON_S);
    }

    #[test]
    fn empty_and_whitespace_specs_are_empty_configs() {
        assert!(parse_fault_spec("").unwrap().is_empty());
        assert!(parse_fault_spec(" ; ;").unwrap().is_empty());
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse_fault_spec("bogus:site=1")
            .unwrap_err()
            .contains("unknown fault kind"));
        assert!(parse_fault_spec("outage:mttf=1h,mttr=1m")
            .unwrap_err()
            .contains("missing 'site='"));
        assert!(parse_fault_spec("outage:site=1,mttf=xyz,mttr=1m")
            .unwrap_err()
            .contains("not a duration"));
        assert!(
            parse_fault_spec("nodeloss:site=1,fraction=1.5,mttf=1h,mttr=1m")
                .unwrap_err()
                .contains("must be in [0, 1]")
        );
        assert!(parse_fault_spec("outage").unwrap_err().contains("kind"));
        assert!(parse_fault_spec("kill:rate=-2").is_err());
        assert!(parse_fault_spec("diskloss:site=1")
            .unwrap_err()
            .contains("missing 'mttf='"));
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let err = parse_fault_spec("outage:site=1,mttf=1h,mttf=2h,mttr=1m").unwrap_err();
        assert!(err.contains("duplicate key 'mttf'"), "got: {err}");
        let err = parse_fault_spec("maint:site=0,start=1h,duration=1h,site=2").unwrap_err();
        assert!(err.contains("duplicate key 'site'"), "got: {err}");
    }

    #[test]
    fn zero_mttf_is_rejected() {
        for spec in [
            "outage:site=1,mttf=0,mttr=1m",
            "incident:sites=0+1,mttf=0s,mttr=1m",
            "nodeloss:site=1,fraction=0.5,mttf=0h,mttr=1m",
            "diskloss:site=all,mttf=0",
            "degrade:link=all,factor=0.5,mttf=0m,mttr=1m",
        ] {
            let err = parse_fault_spec(spec).unwrap_err();
            assert!(
                err.contains("'mttf=0") && err.contains("positive duration"),
                "spec '{spec}' got: {err}"
            );
        }
    }

    #[test]
    fn zero_mttr_is_rejected() {
        let err = parse_fault_spec("outage:site=1,mttf=1h,mttr=0").unwrap_err();
        assert!(
            err.contains("'mttr=0") && err.contains("positive duration"),
            "got: {err}"
        );
    }

    #[test]
    fn zero_maintenance_period_is_rejected() {
        let err = parse_fault_spec("maint:site=0,start=1h,duration=30m,period=0").unwrap_err();
        assert!(
            err.contains("'period=0") && err.contains("positive duration"),
            "got: {err}"
        );
        // Non-periodic maintenance (no period key) still parses.
        assert!(parse_fault_spec("maint:site=0,start=1h,duration=30m").is_ok());
    }

    #[test]
    fn non_positive_shape_is_rejected() {
        for spec in [
            "outage:site=1,mttf=1h,mttr=1m,shape=0",
            "incident:sites=0+1,mttf=1h,mttr=1m,shape=-1.5",
            "degrade:link=all,factor=0.5,mttf=1h,mttr=1m,shape=0.0",
        ] {
            let err = parse_fault_spec(spec).unwrap_err();
            assert!(
                err.contains("shape must be a positive"),
                "spec '{spec}' got: {err}"
            );
        }
    }

    #[test]
    fn negative_fraction_and_factor_are_rejected() {
        let err = parse_fault_spec("nodeloss:site=1,fraction=-0.2,mttf=1h,mttr=1m").unwrap_err();
        assert!(err.contains("must be in [0, 1]"), "got: {err}");
        let err = parse_fault_spec("degrade:link=all,factor=-0.3,mttf=1h,mttr=1m").unwrap_err();
        assert!(err.contains("must be in [0, 1]"), "got: {err}");
    }

    #[test]
    fn durations_accept_all_suffixes() {
        assert_eq!(parse_duration("90").unwrap(), 90.0);
        assert_eq!(parse_duration("90s").unwrap(), 90.0);
        assert_eq!(parse_duration("2m").unwrap(), 120.0);
        assert_eq!(parse_duration("1.5h").unwrap(), 5400.0);
        assert_eq!(parse_duration("1d").unwrap(), 86_400.0);
        assert!(parse_duration("-5").is_err());
    }
}
