//! Property tests for `FaultPlan::generate` invariants.
//!
//! For arbitrary `(config, topology, seed)` triples the generated plan must
//! be:
//!
//! * **time-sorted** (the replay engine schedules events in order),
//! * **bit-identical** across two generations from the same inputs (the
//!   reproducibility contract behind the CI determinism gates),
//! * **replay-safe**: walking the schedule, the per-site nested down-count,
//!   the per-site node-loss stack and the per-link degradation count never
//!   go negative — every recovery is preceded by its fault,
//! * **balanced**: every `SiteDown` has a matching `SiteUp`, every
//!   `NodeLoss` a `NodeRestore`, every `LinkDegrade` a `LinkRestore`
//!   (disk losses and job kills are deliberately unpaired),
//! * **in-range**: every target index fits the topology.

use cgsim_faults::{
    DegradationSpec, DiskLossSpec, FaultAction, FaultPlan, FaultPlanConfig, FaultTopology,
    IncidentSpec, LinkSelector, MaintenanceSpec, NodeLossSpec, OutageSpec, SiteSelector,
};
use proptest::prelude::*;

/// Builds a fault-plan config from flat generated primitives. Selector codes
/// `0` mean "all"; any other value targets `code - 1` (possibly out of
/// range, which generation must tolerate by dropping the spec).
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn build_config(
    horizon_s: f64,
    outages: &[(usize, f64, f64, f64)],
    maintenance: &[(usize, f64, f64, bool, f64)],
    incidents: &[(usize, usize, f64, f64)],
    node_losses: &[(usize, f64, f64, f64)],
    disk_losses: &[(usize, f64)],
    degradations: &[(usize, f64, f64, f64)],
    kill_rate_per_hour: f64,
) -> FaultPlanConfig {
    let site_sel = |code: usize| {
        if code == 0 {
            SiteSelector::All
        } else {
            SiteSelector::Index(code - 1)
        }
    };
    let link_sel = |code: usize| {
        if code == 0 {
            LinkSelector::All
        } else {
            LinkSelector::Index(code - 1)
        }
    };
    FaultPlanConfig {
        horizon_s,
        outages: outages
            .iter()
            .map(|&(site, mttf_s, mttr_s, shape)| OutageSpec {
                site: site_sel(site),
                mttf_s,
                mttr_s,
                shape,
            })
            .collect(),
        maintenance: maintenance
            .iter()
            .map(
                |&(site, start_s, duration_s, periodic, period_s)| MaintenanceSpec {
                    site,
                    start_s,
                    duration_s,
                    period_s: periodic.then_some(period_s),
                },
            )
            .collect(),
        incidents: incidents
            .iter()
            .map(|&(a, b, mttf_s, mttr_s)| IncidentSpec {
                sites: vec![a, b],
                mttf_s,
                mttr_s,
                shape: 1.0,
            })
            .collect(),
        node_losses: node_losses
            .iter()
            .map(|&(site, fraction, mttf_s, mttr_s)| NodeLossSpec {
                site: site_sel(site),
                fraction,
                mttf_s,
                mttr_s,
            })
            .collect(),
        disk_losses: disk_losses
            .iter()
            .map(|&(site, mttf_s)| DiskLossSpec {
                site: site_sel(site),
                mttf_s,
            })
            .collect(),
        degradations: degradations
            .iter()
            .map(|&(link, factor, mttf_s, mttr_s)| DegradationSpec {
                link: link_sel(link),
                factor,
                mttf_s,
                mttr_s,
                shape: 1.0,
            })
            .collect(),
        kill_rate_per_hour,
    }
}

proptest! {
    #[test]
    fn generated_plans_satisfy_replay_invariants(
        sites in 1usize..6,
        jobs in 1usize..60,
        seed in 0u64..1_000_000,
        horizon_s in 10_000.0f64..300_000.0,
        outages in prop::collection::vec((0usize..8, 2_000.0f64..50_000.0, 100.0f64..5_000.0, 0.5f64..3.0), 0..3),
        maintenance in prop::collection::vec((0usize..8, 0.0f64..50_000.0, 1.0f64..10_000.0, any::<bool>(), 5_000.0f64..50_000.0), 0..3),
        incidents in prop::collection::vec((0usize..8, 0usize..8, 5_000.0f64..50_000.0, 100.0f64..5_000.0), 0..2),
        node_losses in prop::collection::vec((0usize..8, 0.05f64..1.0, 2_000.0f64..50_000.0, 100.0f64..5_000.0), 0..2),
        disk_losses in prop::collection::vec((0usize..8, 2_000.0f64..50_000.0), 0..2),
        degradations in prop::collection::vec((0usize..8, 0.05f64..0.95, 2_000.0f64..50_000.0, 100.0f64..5_000.0), 0..2),
        kill_rate in 0.0f64..10.0,
    ) {
        let topo = FaultTopology {
            sites,
            // An arbitrary eligible-link list (platform link ids need not be
            // contiguous or site-aligned).
            links: (0..sites).map(|i| i * 2 + 1).collect(),
            jobs,
        };
        let config = build_config(
            horizon_s,
            &outages,
            &maintenance,
            &incidents,
            &node_losses,
            &disk_losses,
            &degradations,
            kill_rate,
        );

        let plan = FaultPlan::generate(&config, &topo, seed);

        // Bit-identical regeneration: same inputs, same schedule, down to
        // the serialised bytes.
        let again = FaultPlan::generate(&config, &topo, seed);
        prop_assert_eq!(&plan, &again);
        prop_assert_eq!(
            serde_json::to_string(&plan).unwrap(),
            serde_json::to_string(&again).unwrap()
        );

        // Time-sorted, finite, non-negative times.
        for pair in plan.events.windows(2) {
            prop_assert!(pair[0].time_s <= pair[1].time_s);
        }
        for e in &plan.events {
            prop_assert!(e.time_s.is_finite() && e.time_s >= 0.0);
        }

        // Replay: nested counts never go negative, all targets in range.
        let mut down_count = vec![0i64; sites];
        let mut loss_depth = vec![0i64; sites];
        let mut degrade_count = std::collections::HashMap::new();
        for e in &plan.events {
            match e.action {
                FaultAction::SiteDown { site } => {
                    prop_assert!(site < sites);
                    down_count[site] += 1;
                }
                FaultAction::SiteUp { site } => {
                    prop_assert!(site < sites);
                    down_count[site] -= 1;
                    prop_assert!(down_count[site] >= 0, "SiteUp before its SiteDown");
                }
                FaultAction::NodeLoss { site, fraction } => {
                    prop_assert!(site < sites);
                    prop_assert!(fraction > 0.0 && fraction <= 1.0);
                    loss_depth[site] += 1;
                }
                FaultAction::NodeRestore { site } => {
                    prop_assert!(site < sites);
                    loss_depth[site] -= 1;
                    prop_assert!(loss_depth[site] >= 0, "NodeRestore before its NodeLoss");
                }
                FaultAction::DiskLoss { site } => {
                    prop_assert!(site < sites);
                }
                FaultAction::LinkDegrade { link, factor } => {
                    prop_assert!(topo.links.contains(&link));
                    prop_assert!(factor > 0.0 && factor <= 1.0);
                    *degrade_count.entry(link).or_insert(0i64) += 1;
                }
                FaultAction::LinkRestore { link } => {
                    prop_assert!(topo.links.contains(&link));
                    let count = degrade_count.entry(link).or_insert(0i64);
                    *count -= 1;
                    prop_assert!(*count >= 0, "LinkRestore before its LinkDegrade");
                }
                FaultAction::KillJob { job } => {
                    prop_assert!(job < jobs);
                }
            }
        }

        // Balanced: every down has a matching up (etc.) by the end of the
        // schedule — recoveries are generated even past the horizon.
        for site in 0..sites {
            prop_assert_eq!(down_count[site], 0, "unbalanced outage at site {}", site);
            prop_assert_eq!(loss_depth[site], 0, "unbalanced node loss at site {}", site);
        }
        for (link, count) in degrade_count {
            prop_assert_eq!(count, 0, "unbalanced degradation on link {}", link);
        }

        // An empty config always produces an empty plan.
        if config.is_empty() {
            prop_assert!(plan.is_empty());
        }
    }
}
