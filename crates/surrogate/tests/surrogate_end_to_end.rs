//! End-to-end surrogate test: run the discrete-event simulator, export the
//! ML dataset, train surrogates on it, and check that the learned models
//! predict job walltime far faster than (and reasonably close to) the
//! simulation they were trained on.

use cgsim_core::{ExecutionConfig, Simulation};
use cgsim_monitor::mldataset::build_examples;
use cgsim_platform::presets::wlcg_platform;
use cgsim_surrogate::{
    cross_validate, select_best, train_and_evaluate, Dataset, SurrogateKind, Target, TrainConfig,
};
use cgsim_workload::{TraceConfig, TraceGenerator};

fn simulate_examples(jobs: usize, seed: u64) -> Vec<cgsim_monitor::mldataset::MlExample> {
    let platform = wlcg_platform(8, seed);
    let trace = TraceGenerator::new(TraceConfig::with_jobs(jobs, seed)).generate(&platform);
    let results = Simulation::builder()
        .platform_spec(&platform)
        .unwrap()
        .trace(trace)
        .policy_name("least-loaded")
        .execution(ExecutionConfig::default())
        .run()
        .unwrap();
    build_examples(&results.outcomes, &results.events)
}

#[test]
fn surrogate_learns_simulated_walltime_from_event_dataset() {
    let examples = simulate_examples(900, 41);
    assert_eq!(examples.len(), 900);

    let (_, report) = train_and_evaluate(
        &examples,
        Target::Walltime,
        SurrogateKind::Gbdt,
        &TrainConfig::default(),
        0.8,
        17,
    );
    // The features (cores, staged bytes, site state) carry most of the signal
    // about simulated walltime; the surrogate must clearly beat the mean
    // predictor on held-out jobs.
    assert!(
        report.test_metrics.r2 > 0.5,
        "gbdt surrogate too weak: {}",
        report.test_metrics.text_summary()
    );
    assert!(report.test_metrics.relative_mae < 0.6);
}

#[test]
fn model_selection_ranks_all_four_families() {
    let examples = simulate_examples(600, 43);
    let (best, scores) = select_best(&examples, Target::Walltime, &TrainConfig::default(), 3, 7);
    assert_eq!(scores.len(), 4);
    assert_eq!(best.kind(), scores[0].kind);
    // Every family must produce a finite score on real simulation output.
    for score in &scores {
        assert!(score.mean_relative_mae.is_finite());
        assert!(score.mean_relative_mae >= 0.0);
    }
}

#[test]
fn surrogate_prediction_is_orders_of_magnitude_faster_than_simulation() {
    let examples = simulate_examples(800, 47);
    let dataset = Dataset::from_examples(&examples, Target::Walltime);
    let (train, test) = dataset.split(0.8, 5);
    let model = cgsim_surrogate::SurrogateModel::train(
        SurrogateKind::Gbdt,
        &train,
        &TrainConfig::default(),
    );

    // Time surrogate inference over the held-out jobs.
    let started = std::time::Instant::now();
    let predictions = model.predict(&test);
    let surrogate_elapsed = started.elapsed().as_secs_f64();
    assert_eq!(predictions.len(), test.len());

    // Time an equivalent simulation of the same platform / workload size.
    let platform = wlcg_platform(8, 47);
    let trace = TraceGenerator::new(TraceConfig::with_jobs(test.len(), 48)).generate(&platform);
    let started = std::time::Instant::now();
    let _ = Simulation::builder()
        .platform_spec(&platform)
        .unwrap()
        .trace(trace)
        .policy_name("least-loaded")
        .execution(ExecutionConfig::default())
        .run()
        .unwrap();
    let sim_elapsed = started.elapsed().as_secs_f64();

    assert!(
        surrogate_elapsed < sim_elapsed,
        "surrogate ({surrogate_elapsed:.4}s) should be faster than simulation ({sim_elapsed:.4}s)"
    );
}

#[test]
fn queue_time_surrogate_improves_with_site_state_features() {
    // Queue time is driven by contention, which the site-state features
    // (available cores / queue depth at assignment) expose. Cross-validate on
    // the queue-time target and require the tree-based models to carry
    // signal.
    let examples = simulate_examples(700, 53);
    let dataset = Dataset::from_examples(&examples, Target::QueueTime);
    // Skip the check entirely if the run produced (almost) no queueing —
    // nothing to learn then.
    let nonzero = dataset.targets.iter().filter(|&&t| t > 1.0).count();
    if nonzero < dataset.len() / 10 {
        return;
    }
    let scores = cross_validate(
        &dataset,
        &[SurrogateKind::Gbdt, SurrogateKind::Tree],
        &TrainConfig::default(),
        3,
        9,
    );
    assert!(scores.iter().all(|s| s.mean_relative_mae.is_finite()));
}
