//! A uniform surrogate-model facade: training, evaluation, model selection.
//!
//! [`SurrogateModel`] wraps the concrete regressors behind one train/predict
//! interface so the examples, the CLI and the benchmark harness can switch
//! models by name. [`train_and_evaluate`] packages the standard workflow —
//! split, fit, score on held-out data — and [`select_best`] runs k-fold
//! cross-validation over several candidate models and picks the winner, which
//! is how the surrogate benchmark decides what to compare against the full
//! discrete-event simulation.

use cgsim_monitor::mldataset::MlExample;
use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, Standardizer, Target};
use crate::gbdt::{GbdtConfig, GradientBoostedTrees};
use crate::knn::KnnRegressor;
use crate::linear::RidgeRegression;
use crate::metrics::RegressionMetrics;
use crate::tree::{RegressionTree, TreeConfig};

/// Which surrogate family to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SurrogateKind {
    /// Ridge regression (linear).
    Ridge,
    /// K-nearest neighbours.
    Knn,
    /// A single regression tree.
    Tree,
    /// Gradient-boosted regression trees.
    Gbdt,
}

impl SurrogateKind {
    /// All kinds, in the order they are reported.
    pub const ALL: [SurrogateKind; 4] = [
        SurrogateKind::Ridge,
        SurrogateKind::Knn,
        SurrogateKind::Tree,
        SurrogateKind::Gbdt,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            SurrogateKind::Ridge => "ridge",
            SurrogateKind::Knn => "knn",
            SurrogateKind::Tree => "tree",
            SurrogateKind::Gbdt => "gbdt",
        }
    }

    /// Parses a label produced by [`SurrogateKind::label`].
    pub fn parse(name: &str) -> Option<SurrogateKind> {
        Self::ALL.into_iter().find(|k| k.label() == name)
    }
}

/// Training hyper-parameters for every model family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Ridge regularisation strength.
    pub ridge_lambda: f64,
    /// Number of neighbours for k-NN.
    pub knn_k: usize,
    /// Whether k-NN weights neighbours by inverse distance.
    pub knn_distance_weighted: bool,
    /// Single-tree configuration.
    pub tree: TreeConfig,
    /// Boosted-ensemble configuration.
    pub gbdt: GbdtConfig,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            ridge_lambda: 1.0,
            knn_k: 10,
            knn_distance_weighted: true,
            tree: TreeConfig::default(),
            gbdt: GbdtConfig::default(),
        }
    }
}

/// A trained surrogate of any family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SurrogateModel {
    /// Ridge regression plus the feature standardiser it was trained with.
    Ridge {
        /// Fitted standardiser.
        standardizer: Standardizer,
        /// Fitted linear model (on standardised features).
        model: RidgeRegression,
    },
    /// K-nearest neighbours (standardisation is internal to the model).
    Knn(KnnRegressor),
    /// A single regression tree.
    Tree(RegressionTree),
    /// Gradient-boosted trees.
    Gbdt(GradientBoostedTrees),
}

impl SurrogateModel {
    /// Trains a surrogate of the requested kind on a dataset.
    pub fn train(kind: SurrogateKind, dataset: &Dataset, config: &TrainConfig) -> Self {
        match kind {
            SurrogateKind::Ridge => {
                let standardizer = Standardizer::fit(dataset);
                let standardized = standardizer.transform(dataset);
                SurrogateModel::Ridge {
                    standardizer,
                    model: RidgeRegression::fit(&standardized, config.ridge_lambda),
                }
            }
            SurrogateKind::Knn => SurrogateModel::Knn(KnnRegressor::fit(
                dataset,
                config.knn_k,
                config.knn_distance_weighted,
            )),
            SurrogateKind::Tree => SurrogateModel::Tree(RegressionTree::fit(dataset, config.tree)),
            SurrogateKind::Gbdt => {
                SurrogateModel::Gbdt(GradientBoostedTrees::fit(dataset, config.gbdt))
            }
        }
    }

    /// Which family this model belongs to.
    pub fn kind(&self) -> SurrogateKind {
        match self {
            SurrogateModel::Ridge { .. } => SurrogateKind::Ridge,
            SurrogateModel::Knn(_) => SurrogateKind::Knn,
            SurrogateModel::Tree(_) => SurrogateKind::Tree,
            SurrogateModel::Gbdt(_) => SurrogateKind::Gbdt,
        }
    }

    /// Predicts the target for one raw feature row.
    pub fn predict_one(&self, features: &[f64]) -> f64 {
        match self {
            SurrogateModel::Ridge {
                standardizer,
                model,
            } => {
                let mut row = features.to_vec();
                standardizer.transform_row(&mut row);
                model.predict_one(&row)
            }
            SurrogateModel::Knn(model) => model.predict_one(features),
            SurrogateModel::Tree(model) => model.predict_one(features),
            SurrogateModel::Gbdt(model) => model.predict_one(features),
        }
    }

    /// Predicts every row of a dataset.
    pub fn predict(&self, dataset: &Dataset) -> Vec<f64> {
        dataset
            .features
            .iter()
            .map(|row| self.predict_one(row))
            .collect()
    }

    /// Scores the model on a dataset.
    pub fn evaluate(&self, dataset: &Dataset) -> RegressionMetrics {
        RegressionMetrics::compute(&self.predict(dataset), &dataset.targets)
    }
}

/// Outcome of training one surrogate on a train/test split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateReport {
    /// Model family.
    pub kind: SurrogateKind,
    /// Target quantity.
    pub target: Target,
    /// Training-set size.
    pub train_rows: usize,
    /// Held-out-set size.
    pub test_rows: usize,
    /// Metrics on the training set.
    pub train_metrics: RegressionMetrics,
    /// Metrics on the held-out set.
    pub test_metrics: RegressionMetrics,
}

impl SurrogateReport {
    /// One CSV row (see [`SurrogateReport::CSV_HEADER`]).
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4}",
            self.kind.label(),
            self.target.label(),
            self.train_rows,
            self.test_rows,
            self.test_metrics.mae,
            self.test_metrics.rmse,
            self.test_metrics.r2,
            self.test_metrics.mape,
            self.test_metrics.relative_mae,
        )
    }

    /// CSV header matching [`SurrogateReport::to_csv_row`].
    pub const CSV_HEADER: &'static str =
        "model,target,train_rows,test_rows,test_mae,test_rmse,test_r2,test_mape,test_rel_mae";
}

/// Trains one surrogate on a deterministic train/test split of the examples
/// and reports train and test metrics.
pub fn train_and_evaluate(
    examples: &[MlExample],
    target: Target,
    kind: SurrogateKind,
    config: &TrainConfig,
    train_fraction: f64,
    seed: u64,
) -> (SurrogateModel, SurrogateReport) {
    let dataset = Dataset::from_examples(examples, target);
    let (train, test) = dataset.split(train_fraction, seed);
    let model = SurrogateModel::train(kind, &train, config);
    let report = SurrogateReport {
        kind,
        target,
        train_rows: train.len(),
        test_rows: test.len(),
        train_metrics: model.evaluate(&train),
        test_metrics: model.evaluate(&test),
    };
    (model, report)
}

/// Mean cross-validated relative MAE of one model family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValidationScore {
    /// Model family.
    pub kind: SurrogateKind,
    /// Mean relative MAE over the validation folds.
    pub mean_relative_mae: f64,
    /// Mean R² over the validation folds.
    pub mean_r2: f64,
    /// Number of folds.
    pub folds: usize,
}

/// Runs k-fold cross-validation for each candidate kind and returns the
/// scores sorted best-first (lowest relative MAE).
pub fn cross_validate(
    dataset: &Dataset,
    kinds: &[SurrogateKind],
    config: &TrainConfig,
    folds: usize,
    seed: u64,
) -> Vec<CrossValidationScore> {
    let fold_indices = dataset.k_folds(folds, seed);
    let mut scores: Vec<CrossValidationScore> = kinds
        .iter()
        .map(|&kind| {
            let mut rel_mae_sum = 0.0;
            let mut r2_sum = 0.0;
            for (train_idx, val_idx) in &fold_indices {
                let train = dataset.subset(train_idx);
                let val = dataset.subset(val_idx);
                let model = SurrogateModel::train(kind, &train, config);
                let metrics = model.evaluate(&val);
                rel_mae_sum += metrics.relative_mae;
                r2_sum += metrics.r2;
            }
            let k = fold_indices.len() as f64;
            CrossValidationScore {
                kind,
                mean_relative_mae: rel_mae_sum / k,
                mean_r2: r2_sum / k,
                folds: fold_indices.len(),
            }
        })
        .collect();
    scores.sort_by(|a, b| {
        a.mean_relative_mae
            .partial_cmp(&b.mean_relative_mae)
            .expect("scores are finite")
    });
    scores
}

/// Cross-validates all model families and trains the winner on the full
/// dataset. Returns the fitted model plus the ranked scores.
pub fn select_best(
    examples: &[MlExample],
    target: Target,
    config: &TrainConfig,
    folds: usize,
    seed: u64,
) -> (SurrogateModel, Vec<CrossValidationScore>) {
    let dataset = Dataset::from_examples(examples, target);
    let scores = cross_validate(&dataset, &SurrogateKind::ALL, config, folds, seed);
    let best_kind = scores
        .first()
        .map(|s| s.kind)
        .unwrap_or(SurrogateKind::Gbdt);
    let model = SurrogateModel::train(best_kind, &dataset, config);
    (model, scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_des::rng::Rng;

    /// Synthetic examples whose walltime follows a learnable pattern:
    /// roughly proportional to staged bytes and inversely to cores.
    fn synthetic_examples(n: usize, seed: u64) -> Vec<MlExample> {
        let mut rng = Rng::new(seed);
        (0..n as u64)
            .map(|i| {
                let multicore = rng.chance(0.4);
                let cores = if multicore { 8.0 } else { 1.0 };
                let staged = rng.uniform_range(1e8, 5e9);
                let queue = rng.uniform_range(0.0, 50.0);
                let walltime =
                    staged / 1e6 / cores + 100.0 * queue / cores + 50.0 * rng.normal_std().abs();
                MlExample {
                    job_id: i,
                    is_multicore: if multicore { 1.0 } else { 0.0 },
                    cores,
                    work_hs23: walltime * 10.0 * cores,
                    staged_bytes: staged,
                    site_available_cores_at_assign: rng.uniform_range(0.0, 2000.0),
                    site_queue_at_assign: queue,
                    submit_time: rng.uniform_range(0.0, 3600.0),
                    target_queue_time: queue * 30.0,
                    target_walltime: walltime,
                }
            })
            .collect()
    }

    #[test]
    fn every_kind_trains_and_beats_the_mean_predictor() {
        let examples = synthetic_examples(600, 1);
        for kind in SurrogateKind::ALL {
            let (_model, report) = train_and_evaluate(
                &examples,
                Target::Walltime,
                kind,
                &TrainConfig::default(),
                0.8,
                7,
            );
            assert!(
                report.test_metrics.r2 > 0.2,
                "{} failed: {}",
                kind.label(),
                report.test_metrics.text_summary()
            );
            assert_eq!(report.train_rows + report.test_rows, 600);
            assert!(report.to_csv_row().starts_with(kind.label()));
        }
    }

    #[test]
    fn gbdt_is_among_the_best_models_on_nonlinear_data() {
        let examples = synthetic_examples(800, 2);
        let dataset = Dataset::from_examples(&examples, Target::Walltime);
        let scores = cross_validate(
            &dataset,
            &SurrogateKind::ALL,
            &TrainConfig::default(),
            4,
            11,
        );
        assert_eq!(scores.len(), 4);
        // Scores are sorted best-first.
        for pair in scores.windows(2) {
            assert!(pair[0].mean_relative_mae <= pair[1].mean_relative_mae);
        }
        let gbdt_rank = scores
            .iter()
            .position(|s| s.kind == SurrogateKind::Gbdt)
            .unwrap();
        assert!(gbdt_rank <= 1, "gbdt ranked {gbdt_rank}: {scores:?}");
    }

    #[test]
    fn select_best_returns_the_top_ranked_model() {
        let examples = synthetic_examples(400, 3);
        let (model, scores) =
            select_best(&examples, Target::Walltime, &TrainConfig::default(), 3, 5);
        assert_eq!(model.kind(), scores[0].kind);
        let dataset = Dataset::from_examples(&examples, Target::Walltime);
        assert!(model.evaluate(&dataset).r2 > 0.3);
    }

    #[test]
    fn queue_time_target_is_supported() {
        let examples = synthetic_examples(500, 4);
        let (_, report) = train_and_evaluate(
            &examples,
            Target::QueueTime,
            SurrogateKind::Gbdt,
            &TrainConfig::default(),
            0.75,
            3,
        );
        assert_eq!(report.target, Target::QueueTime);
        // Queue time here is a deterministic function of one feature.
        assert!(
            report.test_metrics.r2 > 0.9,
            "{}",
            report.test_metrics.text_summary()
        );
    }

    #[test]
    fn kind_labels_roundtrip() {
        for kind in SurrogateKind::ALL {
            assert_eq!(SurrogateKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(SurrogateKind::parse("nope"), None);
    }

    #[test]
    fn prediction_is_deterministic() {
        let examples = synthetic_examples(300, 5);
        let dataset = Dataset::from_examples(&examples, Target::Walltime);
        let model = SurrogateModel::train(SurrogateKind::Gbdt, &dataset, &TrainConfig::default());
        assert_eq!(model.predict(&dataset), model.predict(&dataset));
    }
}
