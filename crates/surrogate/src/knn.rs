//! K-nearest-neighbour regression.
//!
//! A non-parametric surrogate that needs no training beyond memorising the
//! (standardised) training rows; predictions average the targets of the `k`
//! closest rows, optionally weighted by inverse distance. Useful both as a
//! baseline for the tree/linear surrogates and as a sanity check that the
//! feature space actually carries signal about the target.

use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, Standardizer};

/// A fitted k-NN regressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnRegressor {
    /// Number of neighbours considered.
    pub k: usize,
    /// Whether neighbour targets are weighted by inverse distance.
    pub distance_weighted: bool,
    standardizer: Standardizer,
    train_features: Vec<Vec<f64>>,
    train_targets: Vec<f64>,
}

impl KnnRegressor {
    /// Fits (memorises) the training set. `k` is clamped to the training size.
    pub fn fit(dataset: &Dataset, k: usize, distance_weighted: bool) -> Self {
        assert!(!dataset.is_empty(), "cannot fit on an empty dataset");
        assert!(k >= 1, "k must be at least 1");
        let standardizer = Standardizer::fit(dataset);
        let standardized = standardizer.transform(dataset);
        KnnRegressor {
            k: k.min(dataset.len()),
            distance_weighted,
            standardizer,
            train_features: standardized.features,
            train_targets: standardized.targets,
        }
    }

    /// Predicts the target for one (raw, unstandardised) feature row.
    pub fn predict_one(&self, features: &[f64]) -> f64 {
        let mut query = features.to_vec();
        self.standardizer.transform_row(&mut query);
        // Maintain the k smallest squared distances with a simple insertion
        // pass — k is tiny compared to the training size.
        let mut best: Vec<(f64, f64)> = Vec::with_capacity(self.k + 1); // (dist², target)
        for (row, &target) in self.train_features.iter().zip(&self.train_targets) {
            let dist: f64 = row
                .iter()
                .zip(&query)
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum();
            if best.len() < self.k || dist < best.last().expect("non-empty").0 {
                let pos = best.partition_point(|&(d, _)| d < dist);
                best.insert(pos, (dist, target));
                if best.len() > self.k {
                    best.pop();
                }
            }
        }
        if self.distance_weighted {
            let mut weight_sum = 0.0;
            let mut value_sum = 0.0;
            for &(dist, target) in &best {
                let w = 1.0 / (dist.sqrt() + 1e-9);
                weight_sum += w;
                value_sum += w * target;
            }
            value_sum / weight_sum
        } else {
            best.iter().map(|&(_, t)| t).sum::<f64>() / best.len() as f64
        }
    }

    /// Predicts every row of a dataset.
    pub fn predict(&self, dataset: &Dataset) -> Vec<f64> {
        dataset
            .features
            .iter()
            .map(|row| self.predict_one(row))
            .collect()
    }

    /// Number of memorised training rows.
    pub fn train_size(&self) -> usize {
        self.train_features.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Target;
    use crate::metrics::RegressionMetrics;
    use cgsim_des::rng::Rng;

    fn step_dataset(rows: usize, seed: u64) -> Dataset {
        // Target depends only on which side of x=0.5 the point falls.
        let mut rng = Rng::new(seed);
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for _ in 0..rows {
            let x = rng.uniform();
            let y = rng.uniform_range(0.0, 100.0); // irrelevant feature
            features.push(vec![x, y]);
            targets.push(if x < 0.5 { 10.0 } else { 50.0 });
        }
        Dataset::from_raw(features, targets, Target::Walltime)
    }

    #[test]
    fn exact_neighbour_is_reproduced_with_k1() {
        let d = step_dataset(50, 1);
        let model = KnnRegressor::fit(&d, 1, false);
        for (row, &target) in d.features.iter().zip(&d.targets) {
            assert_eq!(model.predict_one(row), target);
        }
        assert_eq!(model.train_size(), 50);
    }

    #[test]
    fn learns_a_step_function() {
        let train = step_dataset(400, 2);
        let test = step_dataset(100, 3);
        let model = KnnRegressor::fit(&train, 5, false);
        let metrics = RegressionMetrics::compute(&model.predict(&test), &test.targets);
        assert!(metrics.r2 > 0.9, "{}", metrics.text_summary());
    }

    #[test]
    fn distance_weighting_helps_near_boundaries() {
        let train = step_dataset(400, 4);
        let test = step_dataset(150, 5);
        let unweighted = KnnRegressor::fit(&train, 15, false);
        let weighted = KnnRegressor::fit(&train, 15, true);
        let mu = RegressionMetrics::compute(&unweighted.predict(&test), &test.targets);
        let mw = RegressionMetrics::compute(&weighted.predict(&test), &test.targets);
        // Weighted k-NN should be at least as good on this sharp boundary.
        assert!(mw.mae <= mu.mae * 1.05, "weighted {} vs {}", mw.mae, mu.mae);
    }

    #[test]
    fn k_is_clamped_to_training_size() {
        let d = step_dataset(3, 6);
        let model = KnnRegressor::fit(&d, 100, false);
        assert_eq!(model.k, 3);
        // Prediction is then the global mean.
        let mean = d.targets.iter().sum::<f64>() / 3.0;
        assert!((model.predict_one(&d.features[0]) - mean).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_k_is_rejected() {
        KnnRegressor::fit(&step_dataset(5, 7), 0, false);
    }
}
