//! # cgsim-surrogate — AI-assisted performance modeling
//!
//! The paper motivates CGSim's event-level dataset generation with the
//! emergence of ML-assisted simulation: "models need detailed training data
//! sets to act as fast surrogates for performance prediction" (§1), and the
//! conclusion lists "integrating advanced machine learning techniques for
//! automated calibration and surrogate modeling" as future work. The
//! companion work (Park et al., SC24-W) trains AI surrogate models on exactly
//! the kind of per-job / per-event records CGSim exports.
//!
//! This crate closes that loop inside the workspace: it consumes the
//! [`MlExample`](cgsim_monitor::mldataset::MlExample) rows produced by a
//! simulation run and trains fast surrogate regressors that predict job
//! walltime or queue time from job and site features — orders of magnitude
//! faster than re-running the discrete-event simulation.
//!
//! Everything is implemented from scratch on `Vec<f64>` matrices (no external
//! ML or linear-algebra dependency):
//!
//! * [`dataset`] — feature extraction, standardisation, train/test splits and
//!   k-fold cross-validation,
//! * [`linear`] — ridge regression solved by normal equations + Cholesky,
//! * [`knn`] — k-nearest-neighbour regression,
//! * [`tree`] — CART-style regression trees,
//! * [`gbdt`] — gradient-boosted regression trees,
//! * [`metrics`] — MAE, RMSE, R², MAPE and relative MAE,
//! * [`model`] — a uniform [`SurrogateModel`](model::SurrogateModel) facade,
//!   model selection by cross-validation, and a simulation-vs-surrogate
//!   speed/accuracy comparison used by the surrogate benchmark.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dataset;
pub mod gbdt;
pub mod knn;
pub mod linear;
pub mod metrics;
pub mod model;
pub mod tree;

pub use dataset::{Dataset, Standardizer, Target};
pub use gbdt::{GbdtConfig, GradientBoostedTrees};
pub use knn::KnnRegressor;
pub use linear::RidgeRegression;
pub use metrics::RegressionMetrics;
pub use model::{
    cross_validate, select_best, train_and_evaluate, CrossValidationScore, SurrogateKind,
    SurrogateModel, SurrogateReport, TrainConfig,
};
pub use tree::{RegressionTree, TreeConfig};
