//! Regression quality metrics.
//!
//! The surrogate-model experiments report the same error vocabulary the
//! calibration experiments use (relative MAE, §4.2) plus the standard
//! regression metrics (MAE, RMSE, R², MAPE) a downstream ML practitioner
//! expects when judging whether a surrogate is good enough to replace the
//! simulator for a given question.

use serde::{Deserialize, Serialize};

/// Standard regression metrics of a prediction vector against ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionMetrics {
    /// Number of (prediction, truth) pairs.
    pub count: usize,
    /// Mean absolute error.
    pub mae: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// Coefficient of determination (1 = perfect, 0 = predicting the mean,
    /// negative = worse than the mean).
    pub r2: f64,
    /// Mean absolute percentage error (undefined entries with zero truth are
    /// skipped).
    pub mape: f64,
    /// Relative mean absolute error: `mean(|pred - truth|) / mean(|truth|)` —
    /// the same normalisation used by the paper's calibration error.
    pub relative_mae: f64,
}

impl RegressionMetrics {
    /// Computes all metrics. Panics if the slices differ in length; returns a
    /// zeroed report for empty inputs.
    pub fn compute(predictions: &[f64], truth: &[f64]) -> Self {
        assert_eq!(
            predictions.len(),
            truth.len(),
            "predictions and truth must align"
        );
        let n = predictions.len();
        if n == 0 {
            return RegressionMetrics {
                count: 0,
                mae: 0.0,
                rmse: 0.0,
                r2: 0.0,
                mape: 0.0,
                relative_mae: 0.0,
            };
        }
        let nf = n as f64;
        let mut abs_err_sum = 0.0;
        let mut sq_err_sum = 0.0;
        let mut mape_sum = 0.0;
        let mut mape_count = 0usize;
        let truth_mean = truth.iter().sum::<f64>() / nf;
        let mut ss_tot = 0.0;
        let mut abs_truth_sum = 0.0;
        for (&p, &t) in predictions.iter().zip(truth) {
            let err = p - t;
            abs_err_sum += err.abs();
            sq_err_sum += err * err;
            ss_tot += (t - truth_mean) * (t - truth_mean);
            abs_truth_sum += t.abs();
            if t.abs() > 1e-12 {
                mape_sum += (err / t).abs();
                mape_count += 1;
            }
        }
        let mae = abs_err_sum / nf;
        let rmse = (sq_err_sum / nf).sqrt();
        let r2 = if ss_tot > 0.0 {
            1.0 - sq_err_sum / ss_tot
        } else if sq_err_sum == 0.0 {
            1.0
        } else {
            0.0
        };
        let mape = if mape_count > 0 {
            mape_sum / mape_count as f64
        } else {
            0.0
        };
        let relative_mae = if abs_truth_sum > 0.0 {
            abs_err_sum / abs_truth_sum
        } else {
            0.0
        };
        RegressionMetrics {
            count: n,
            mae,
            rmse,
            r2,
            mape,
            relative_mae,
        }
    }

    /// One-line human-readable rendering.
    pub fn text_summary(&self) -> String {
        format!(
            "n={} MAE={:.2} RMSE={:.2} R²={:.3} MAPE={:.1}% relMAE={:.1}%",
            self.count,
            self.mae,
            self.rmse,
            self.r2,
            self.mape * 100.0,
            self.relative_mae * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_zero_error_and_unit_r2() {
        let truth = [1.0, 2.0, 3.0, 4.0];
        let m = RegressionMetrics::compute(&truth, &truth);
        assert_eq!(m.count, 4);
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.rmse, 0.0);
        assert_eq!(m.r2, 1.0);
        assert_eq!(m.mape, 0.0);
        assert_eq!(m.relative_mae, 0.0);
    }

    #[test]
    fn mean_prediction_has_zero_r2() {
        let truth = [1.0, 2.0, 3.0, 4.0];
        let mean = [2.5, 2.5, 2.5, 2.5];
        let m = RegressionMetrics::compute(&mean, &truth);
        assert!(m.r2.abs() < 1e-12);
        assert!(m.mae > 0.0);
    }

    #[test]
    fn constant_truth_edge_cases() {
        // Constant truth, perfect prediction -> R² = 1.
        let m = RegressionMetrics::compute(&[5.0, 5.0], &[5.0, 5.0]);
        assert_eq!(m.r2, 1.0);
        // Constant truth, imperfect prediction -> R² = 0 by convention.
        let m = RegressionMetrics::compute(&[4.0, 6.0], &[5.0, 5.0]);
        assert_eq!(m.r2, 0.0);
        assert!(m.mae > 0.0);
    }

    #[test]
    fn zero_truth_entries_are_skipped_in_mape() {
        let m = RegressionMetrics::compute(&[1.0, 2.0], &[0.0, 2.0]);
        assert_eq!(m.mape, 0.0); // only the non-zero entry counts and it is exact
        assert!(m.mae > 0.0);
    }

    #[test]
    fn empty_input_is_neutral() {
        let m = RegressionMetrics::compute(&[], &[]);
        assert_eq!(m.count, 0);
        assert_eq!(m.mae, 0.0);
    }

    #[test]
    fn known_values() {
        // predictions off by exactly 1 everywhere.
        let truth = [10.0, 20.0, 30.0];
        let pred = [11.0, 21.0, 31.0];
        let m = RegressionMetrics::compute(&pred, &truth);
        assert!((m.mae - 1.0).abs() < 1e-12);
        assert!((m.rmse - 1.0).abs() < 1e-12);
        assert!((m.relative_mae - 3.0 / 60.0).abs() < 1e-12);
        assert!(m.r2 > 0.98);
        assert!(m.text_summary().contains("MAE=1.00"));
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        RegressionMetrics::compute(&[1.0], &[1.0, 2.0]);
    }
}
