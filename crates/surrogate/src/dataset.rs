//! Feature extraction, standardisation and dataset splitting.
//!
//! The input is the [`MlExample`](cgsim_monitor::mldataset::MlExample) rows a
//! simulation run exports (paper §4.3.2: "The structured output format
//! supports ... post-processing for performance analysis and machine learning
//! dataset generation"). A [`Dataset`] turns them into a dense feature matrix
//! plus a target vector, with the usual supervised-learning plumbing: feature
//! names, z-score standardisation, deterministic shuffled train/test splits
//! and k-fold cross-validation indices.

use cgsim_des::rng::Rng;
use cgsim_monitor::mldataset::MlExample;
use serde::{Deserialize, Serialize};

/// Which quantity the surrogate predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Target {
    /// Predict the simulated job walltime (seconds).
    #[default]
    Walltime,
    /// Predict the simulated job queue time (seconds).
    QueueTime,
}

impl Target {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Target::Walltime => "walltime",
            Target::QueueTime => "queue_time",
        }
    }
}

/// Names of the features extracted from one [`MlExample`], in column order.
pub const FEATURE_NAMES: [&str; 7] = [
    "is_multicore",
    "cores",
    "log_staged_bytes",
    "site_available_cores_at_assign",
    "site_queue_at_assign",
    "submit_time",
    "log_work_hs23",
];

/// Extracts the feature vector of one example (column order matches
/// [`FEATURE_NAMES`]).
pub fn features_of(example: &MlExample) -> Vec<f64> {
    vec![
        example.is_multicore,
        example.cores,
        (example.staged_bytes + 1.0).ln(),
        example.site_available_cores_at_assign,
        example.site_queue_at_assign,
        example.submit_time,
        (example.work_hs23 + 1.0).ln(),
    ]
}

/// A dense supervised-learning dataset: `rows × features` plus a target
/// vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Row-major feature matrix (`rows` entries of length `columns`).
    pub features: Vec<Vec<f64>>,
    /// Regression targets, one per row.
    pub targets: Vec<f64>,
    /// Feature (column) names.
    pub feature_names: Vec<String>,
    /// Which target the dataset was built for.
    pub target: Target,
}

impl Dataset {
    /// Builds a dataset from ML examples for the given target.
    pub fn from_examples(examples: &[MlExample], target: Target) -> Self {
        let features = examples.iter().map(features_of).collect();
        let targets = examples
            .iter()
            .map(|e| match target {
                Target::Walltime => e.target_walltime,
                Target::QueueTime => e.target_queue_time,
            })
            .collect();
        Dataset {
            features,
            targets,
            feature_names: FEATURE_NAMES.iter().map(|s| s.to_string()).collect(),
            target,
        }
    }

    /// Builds a dataset directly from feature rows and targets (used by tests
    /// and synthetic benchmarks).
    pub fn from_raw(features: Vec<Vec<f64>>, targets: Vec<f64>, target: Target) -> Self {
        assert_eq!(features.len(), targets.len(), "rows must match targets");
        let columns = features.first().map(|r| r.len()).unwrap_or(0);
        assert!(
            features.iter().all(|r| r.len() == columns),
            "all feature rows must have the same width"
        );
        Dataset {
            feature_names: (0..columns).map(|i| format!("f{i}")).collect(),
            features,
            targets,
            target,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True if the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of feature columns.
    pub fn columns(&self) -> usize {
        self.features.first().map(|r| r.len()).unwrap_or(0)
    }

    /// Returns a new dataset holding only the given row indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            targets: indices.iter().map(|&i| self.targets[i]).collect(),
            feature_names: self.feature_names.clone(),
            target: self.target,
        }
    }

    /// Deterministic shuffled train/test split. `train_fraction` of the rows
    /// go to the training set (at least one row in each part when possible).
    pub fn split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            (0.0..=1.0).contains(&train_fraction),
            "train fraction must be in [0, 1]"
        );
        let mut indices: Vec<usize> = (0..self.len()).collect();
        shuffle(&mut indices, seed);
        let mut cut = ((self.len() as f64) * train_fraction).round() as usize;
        if self.len() >= 2 {
            cut = cut.clamp(1, self.len() - 1);
        }
        let (train_idx, test_idx) = indices.split_at(cut.min(self.len()));
        (self.subset(train_idx), self.subset(test_idx))
    }

    /// K-fold cross-validation index sets: returns `k` (train, validation)
    /// index pairs covering every row exactly once as validation.
    pub fn k_folds(&self, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(k >= 2, "need at least 2 folds");
        let k = k.min(self.len().max(2));
        let mut indices: Vec<usize> = (0..self.len()).collect();
        shuffle(&mut indices, seed);
        let mut folds = Vec::with_capacity(k);
        for fold in 0..k {
            let validation: Vec<usize> = indices
                .iter()
                .copied()
                .enumerate()
                .filter(|(pos, _)| pos % k == fold)
                .map(|(_, idx)| idx)
                .collect();
            let train: Vec<usize> = indices
                .iter()
                .copied()
                .enumerate()
                .filter(|(pos, _)| pos % k != fold)
                .map(|(_, idx)| idx)
                .collect();
            folds.push((train, validation));
        }
        folds
    }
}

/// Fisher–Yates shuffle driven by the workspace RNG (deterministic in `seed`).
fn shuffle(indices: &mut [usize], seed: u64) {
    let mut rng = Rng::new(seed);
    for i in (1..indices.len()).rev() {
        let j = rng.index(i + 1);
        indices.swap(i, j);
    }
}

/// Per-column z-score standardiser fitted on a training set and applied to
/// any dataset with the same columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    /// Column means.
    pub means: Vec<f64>,
    /// Column standard deviations (columns with zero variance keep 1.0 so the
    /// transform is a no-op there).
    pub std_devs: Vec<f64>,
}

impl Standardizer {
    /// Fits the standardiser on a dataset.
    pub fn fit(dataset: &Dataset) -> Self {
        let columns = dataset.columns();
        let rows = dataset.len().max(1) as f64;
        let mut means = vec![0.0; columns];
        for row in &dataset.features {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= rows;
        }
        let mut vars = vec![0.0; columns];
        for row in &dataset.features {
            for ((v, &x), &m) in vars.iter_mut().zip(row).zip(&means) {
                *v += (x - m) * (x - m);
            }
        }
        let std_devs = vars
            .iter()
            .map(|&v| {
                let s = (v / rows).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Standardizer { means, std_devs }
    }

    /// Transforms one feature row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((x, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.std_devs) {
            *x = (*x - m) / s;
        }
    }

    /// Returns a standardised copy of a dataset.
    pub fn transform(&self, dataset: &Dataset) -> Dataset {
        let mut out = dataset.clone();
        for row in &mut out.features {
            self.transform_row(row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example(id: u64, cores: u32, walltime: f64) -> MlExample {
        MlExample {
            job_id: id,
            is_multicore: if cores > 1 { 1.0 } else { 0.0 },
            cores: cores as f64,
            work_hs23: walltime * 10.0 * cores as f64,
            staged_bytes: 1e9,
            site_available_cores_at_assign: 100.0,
            site_queue_at_assign: 3.0,
            submit_time: id as f64 * 10.0,
            target_queue_time: 60.0 + id as f64,
            target_walltime: walltime,
        }
    }

    fn toy_dataset(rows: usize) -> Dataset {
        let examples: Vec<MlExample> = (0..rows as u64)
            .map(|i| example(i, if i % 3 == 0 { 8 } else { 1 }, 1000.0 + i as f64))
            .collect();
        Dataset::from_examples(&examples, Target::Walltime)
    }

    #[test]
    fn features_have_expected_shape_and_names() {
        let d = toy_dataset(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.columns(), FEATURE_NAMES.len());
        assert_eq!(d.feature_names.len(), FEATURE_NAMES.len());
        assert!(!d.is_empty());
        // log transform applied to staged bytes.
        assert!((d.features[0][2] - (1e9f64 + 1.0).ln()).abs() < 1e-9);
    }

    #[test]
    fn target_selection_switches_column() {
        let examples = vec![example(1, 1, 500.0)];
        let w = Dataset::from_examples(&examples, Target::Walltime);
        let q = Dataset::from_examples(&examples, Target::QueueTime);
        assert_eq!(w.targets[0], 500.0);
        assert_eq!(q.targets[0], 61.0);
        assert_eq!(Target::Walltime.label(), "walltime");
        assert_eq!(Target::QueueTime.label(), "queue_time");
    }

    #[test]
    fn split_partitions_rows_deterministically() {
        let d = toy_dataset(100);
        let (train_a, test_a) = d.split(0.8, 7);
        let (train_b, test_b) = d.split(0.8, 7);
        assert_eq!(train_a.len(), 80);
        assert_eq!(test_a.len(), 20);
        assert_eq!(train_a, train_b);
        assert_eq!(test_a, test_b);
        let (train_c, _) = d.split(0.8, 8);
        assert_ne!(train_a.features, train_c.features);
    }

    #[test]
    fn split_never_leaves_a_part_empty_when_possible() {
        let d = toy_dataset(5);
        let (train, test) = d.split(0.999, 1);
        assert!(!train.is_empty() && !test.is_empty());
        let (train, test) = d.split(0.001, 1);
        assert!(!train.is_empty() && !test.is_empty());
    }

    #[test]
    fn k_folds_cover_every_row_exactly_once() {
        let d = toy_dataset(23);
        let folds = d.k_folds(5, 3);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0usize; d.len()];
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), d.len());
            for &i in val {
                seen[i] += 1;
            }
            // No overlap between train and validation.
            let val_set: std::collections::HashSet<_> = val.iter().collect();
            assert!(train.iter().all(|i| !val_set.contains(i)));
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn standardizer_centres_and_scales_training_data() {
        let d = toy_dataset(50);
        let std = Standardizer::fit(&d);
        let transformed = std.transform(&d);
        for col in 0..d.columns() {
            let mean: f64 =
                transformed.features.iter().map(|r| r[col]).sum::<f64>() / d.len() as f64;
            assert!(mean.abs() < 1e-9, "column {col} mean {mean}");
        }
        // Constant column (available cores) keeps std 1.0 and becomes 0.
        assert!(transformed.features.iter().all(|r| r[3].abs() < 1e-9));
    }

    #[test]
    fn subset_picks_requested_rows() {
        let d = toy_dataset(10);
        let s = d.subset(&[0, 9]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.targets[0], d.targets[0]);
        assert_eq!(s.targets[1], d.targets[9]);
    }

    #[test]
    #[should_panic]
    fn raw_constructor_rejects_ragged_rows() {
        Dataset::from_raw(
            vec![vec![1.0], vec![1.0, 2.0]],
            vec![0.0, 0.0],
            Target::Walltime,
        );
    }
}
