//! CART-style regression trees.
//!
//! Each internal node splits one feature at a threshold chosen to minimise
//! the summed squared error of the two children; leaves predict the mean
//! target of their training rows. Trees capture the interaction effects a
//! linear surrogate cannot (e.g. "queue time explodes only when the site
//! queue is deep *and* the job is multi-core") and are the base learner of
//! the gradient-boosted surrogate in [`crate::gbdt`].

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// Tree-growing hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (a depth-0 tree is a single leaf).
    pub max_depth: usize,
    /// Minimum number of rows required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum number of rows in each child for a split to be accepted.
    pub min_samples_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 6,
            min_samples_split: 8,
            min_samples_leaf: 4,
        }
    }
}

/// One node of the tree, stored in a flat arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    /// Leaf predicting a constant value.
    Leaf {
        /// Mean target of the training rows reaching this leaf.
        value: f64,
        /// Number of training rows in the leaf.
        samples: usize,
    },
    /// Internal split: rows with `features[feature] <= threshold` go left.
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    config: TreeConfig,
    columns: usize,
}

impl RegressionTree {
    /// Fits a tree on a dataset.
    pub fn fit(dataset: &Dataset, config: TreeConfig) -> Self {
        Self::fit_targets(dataset, &dataset.targets, config)
    }

    /// Fits a tree on the dataset's features but against an externally
    /// supplied target vector (used by gradient boosting to fit residuals).
    pub fn fit_targets(dataset: &Dataset, targets: &[f64], config: TreeConfig) -> Self {
        assert!(!dataset.is_empty(), "cannot fit on an empty dataset");
        assert_eq!(
            dataset.len(),
            targets.len(),
            "targets must align with dataset rows"
        );
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            config,
            columns: dataset.columns(),
        };
        let indices: Vec<usize> = (0..dataset.len()).collect();
        tree.grow(dataset, targets, indices, 0);
        tree
    }

    /// Recursively grows the subtree for `indices`; returns its node id.
    fn grow(
        &mut self,
        dataset: &Dataset,
        targets: &[f64],
        indices: Vec<usize>,
        depth: usize,
    ) -> usize {
        let mean = indices.iter().map(|&i| targets[i]).sum::<f64>() / indices.len() as f64;
        let can_split =
            depth < self.config.max_depth && indices.len() >= self.config.min_samples_split;
        let best = if can_split {
            self.best_split(dataset, targets, &indices)
        } else {
            None
        };
        match best {
            None => {
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf {
                    value: mean,
                    samples: indices.len(),
                });
                id
            }
            Some((feature, threshold)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .into_iter()
                    .partition(|&i| dataset.features[i][feature] <= threshold);
                // Reserve this node's slot before growing children so the
                // arena layout stays parent-before-children.
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf {
                    value: mean,
                    samples: 0,
                });
                let left = self.grow(dataset, targets, left_idx, depth + 1);
                let right = self.grow(dataset, targets, right_idx, depth + 1);
                self.nodes[id] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                id
            }
        }
    }

    /// Finds the (feature, threshold) pair with the lowest child SSE, or
    /// `None` when no split satisfies the leaf-size constraint or improves on
    /// the parent.
    fn best_split(
        &self,
        dataset: &Dataset,
        targets: &[f64],
        indices: &[usize],
    ) -> Option<(usize, f64)> {
        let n = indices.len() as f64;
        let total_sum: f64 = indices.iter().map(|&i| targets[i]).sum();
        let total_sq: f64 = indices.iter().map(|&i| targets[i] * targets[i]).sum();
        let parent_sse = total_sq - total_sum * total_sum / n;

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        for feature in 0..self.columns {
            // Sort the rows by this feature and scan split points.
            let mut order: Vec<usize> = indices.to_vec();
            order.sort_by(|&a, &b| {
                dataset.features[a][feature]
                    .partial_cmp(&dataset.features[b][feature])
                    .expect("features are finite")
            });
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for (pos, &i) in order.iter().enumerate().take(order.len() - 1) {
                let y = targets[i];
                left_sum += y;
                left_sq += y * y;
                let left_n = (pos + 1) as f64;
                let right_n = n - left_n;
                if (pos + 1) < self.config.min_samples_leaf
                    || (order.len() - pos - 1) < self.config.min_samples_leaf
                {
                    continue;
                }
                let x_here = dataset.features[i][feature];
                let x_next = dataset.features[order[pos + 1]][feature];
                if x_next <= x_here {
                    continue; // no valid threshold between equal values
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse = (left_sq - left_sum * left_sum / left_n)
                    + (right_sq - right_sum * right_sum / right_n);
                if best.map(|(_, _, s)| sse < s).unwrap_or(true) {
                    best = Some((feature, 0.5 * (x_here + x_next), sse));
                }
            }
        }
        best.and_then(|(feature, threshold, sse)| {
            // Require a real improvement to avoid degenerate splits.
            if sse < parent_sse - 1e-12 {
                Some((feature, threshold))
            } else {
                None
            }
        })
    }

    /// Predicts the target for one feature row.
    pub fn predict_one(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.columns, "feature width mismatch");
        let mut node = 0;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value, .. } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicts every row of a dataset.
    pub fn predict(&self, dataset: &Dataset) -> Vec<f64> {
        dataset
            .features
            .iter()
            .map(|row| self.predict_one(row))
            .collect()
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves in the tree.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        depth_of(&self.nodes, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Target;
    use crate::metrics::RegressionMetrics;
    use cgsim_des::rng::Rng;

    fn xor_like_dataset(rows: usize, seed: u64) -> Dataset {
        // Target depends on the interaction of two features: a linear model
        // cannot represent it, a depth-2 tree can.
        let mut rng = Rng::new(seed);
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for _ in 0..rows {
            let a = rng.uniform();
            let b = rng.uniform();
            features.push(vec![a, b]);
            let hi_a = a > 0.5;
            let hi_b = b > 0.5;
            targets.push(if hi_a ^ hi_b { 100.0 } else { 10.0 });
        }
        Dataset::from_raw(features, targets, Target::Walltime)
    }

    #[test]
    fn single_leaf_when_depth_zero() {
        let d = xor_like_dataset(100, 1);
        let tree = RegressionTree::fit(
            &d,
            TreeConfig {
                max_depth: 0,
                ..TreeConfig::default()
            },
        );
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.depth(), 0);
        let mean = d.targets.iter().sum::<f64>() / d.len() as f64;
        assert!((tree.predict_one(&[0.1, 0.9]) - mean).abs() < 1e-9);
    }

    #[test]
    fn learns_interaction_effects() {
        let train = xor_like_dataset(600, 2);
        let test = xor_like_dataset(200, 3);
        let tree = RegressionTree::fit(
            &train,
            TreeConfig {
                max_depth: 4,
                min_samples_split: 4,
                min_samples_leaf: 2,
            },
        );
        let metrics = RegressionMetrics::compute(&tree.predict(&test), &test.targets);
        assert!(metrics.r2 > 0.95, "{}", metrics.text_summary());
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn respects_max_depth_and_leaf_size() {
        let d = xor_like_dataset(500, 4);
        let cfg = TreeConfig {
            max_depth: 3,
            min_samples_split: 10,
            min_samples_leaf: 5,
        };
        let tree = RegressionTree::fit(&d, cfg);
        assert!(tree.depth() <= 3);
        // No leaf smaller than min_samples_leaf.
        for node in &tree.nodes {
            if let Node::Leaf { samples, .. } = node {
                assert!(*samples >= cfg.min_samples_leaf || tree.node_count() == 1);
            }
        }
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let d = Dataset::from_raw(
            (0..50).map(|i| vec![i as f64]).collect(),
            vec![7.0; 50],
            Target::Walltime,
        );
        let tree = RegressionTree::fit(&d, TreeConfig::default());
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.predict_one(&[25.0]), 7.0);
    }

    #[test]
    fn fit_targets_fits_residuals_not_dataset_targets() {
        let d = xor_like_dataset(200, 5);
        let residuals: Vec<f64> = d.targets.iter().map(|t| t - 50.0).collect();
        let tree = RegressionTree::fit_targets(&d, &residuals, TreeConfig::default());
        let preds = tree.predict(&d);
        // Predictions should approximate the residuals, not the raw targets.
        let metrics = RegressionMetrics::compute(&preds, &residuals);
        assert!(metrics.r2 > 0.9);
    }

    #[test]
    #[should_panic]
    fn empty_dataset_is_rejected() {
        RegressionTree::fit(
            &Dataset::from_raw(Vec::new(), Vec::new(), Target::Walltime),
            TreeConfig::default(),
        );
    }
}
