//! Ridge regression solved by normal equations.
//!
//! The simplest useful surrogate: a linear model with L2 regularisation,
//! fitted by solving `(XᵀX + λI) w = Xᵀy` with a Cholesky factorisation. The
//! ridge term keeps the system well-conditioned even when features are
//! correlated (cores and is_multicore are, for example).

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// A fitted ridge-regression model (weights include the intercept as the
/// last coefficient).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RidgeRegression {
    /// Per-feature weights.
    pub weights: Vec<f64>,
    /// Intercept term.
    pub intercept: f64,
    /// Regularisation strength used at fit time.
    pub lambda: f64,
}

impl RidgeRegression {
    /// Fits a ridge regression with regularisation strength `lambda` (0 gives
    /// ordinary least squares, made solvable by a tiny jitter).
    pub fn fit(dataset: &Dataset, lambda: f64) -> Self {
        assert!(!dataset.is_empty(), "cannot fit on an empty dataset");
        assert!(lambda >= 0.0, "lambda must be non-negative");
        let n = dataset.len();
        let d = dataset.columns() + 1; // + intercept column
                                       // Build the augmented design matrix implicitly: xᵢ = [features, 1].
                                       // Normal equations: A = XᵀX + λI (intercept not regularised), b = Xᵀy.
        let mut a = vec![vec![0.0; d]; d];
        let mut b = vec![0.0; d];
        for row_idx in 0..n {
            let y = dataset.targets[row_idx];
            let row = &dataset.features[row_idx];
            for i in 0..d {
                let xi = if i + 1 == d { 1.0 } else { row[i] };
                b[i] += xi * y;
                for j in i..d {
                    let xj = if j + 1 == d { 1.0 } else { row[j] };
                    a[i][j] += xi * xj;
                }
            }
        }
        // Mirror the upper triangle and add the ridge term.
        for i in 1..d {
            let (upper_rows, rest) = a.split_at_mut(i);
            let row = &mut rest[0];
            for (j, cell) in row.iter_mut().enumerate().take(i) {
                *cell = upper_rows[j][i];
            }
        }
        let effective_lambda = lambda.max(1e-9);
        for (i, row) in a.iter_mut().enumerate().take(d - 1) {
            row[i] += effective_lambda;
        }
        a[d - 1][d - 1] += 1e-12; // keep the intercept row positive definite

        let solution = cholesky_solve(&a, &b)
            .expect("normal-equation matrix is positive definite after ridge term");
        let (weights, intercept) = solution.split_at(d - 1);
        RidgeRegression {
            weights: weights.to_vec(),
            intercept: intercept[0],
            lambda,
        }
    }

    /// Predicts the target for one feature row.
    pub fn predict_one(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.weights.len(),
            "feature width must match the fitted model"
        );
        self.intercept
            + features
                .iter()
                .zip(&self.weights)
                .map(|(&x, &w)| x * w)
                .sum::<f64>()
    }

    /// Predicts every row of a dataset.
    pub fn predict(&self, dataset: &Dataset) -> Vec<f64> {
        dataset
            .features
            .iter()
            .map(|row| self.predict_one(row))
            .collect()
    }
}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky
/// (`A = L Lᵀ`). Returns `None` when the factorisation breaks down.
fn cholesky_solve(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = a.len();
    let mut l = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let dot: f64 = l[i][..j].iter().zip(&l[j][..j]).map(|(x, y)| x * y).sum();
            let sum = a[i][j] - dot;
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i][j] = sum.sqrt();
            } else {
                l[i][j] = sum / l[j][j];
            }
        }
    }
    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i][k] * y[k];
        }
        y[i] = sum / l[i][i];
    }
    // Back substitution: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[k][i] * x[k];
        }
        x[i] = sum / l[i][i];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Target;
    use crate::metrics::RegressionMetrics;
    use cgsim_des::rng::Rng;

    /// y = 3 x0 - 2 x1 + 5 plus optional noise.
    fn linear_dataset(rows: usize, noise: f64, seed: u64) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut features = Vec::with_capacity(rows);
        let mut targets = Vec::with_capacity(rows);
        for _ in 0..rows {
            let x0 = rng.uniform_range(-5.0, 5.0);
            let x1 = rng.uniform_range(0.0, 10.0);
            features.push(vec![x0, x1]);
            targets.push(3.0 * x0 - 2.0 * x1 + 5.0 + noise * rng.normal_std());
        }
        Dataset::from_raw(features, targets, Target::Walltime)
    }

    #[test]
    fn recovers_exact_linear_relationship() {
        let d = linear_dataset(200, 0.0, 1);
        let model = RidgeRegression::fit(&d, 0.0);
        assert!((model.weights[0] - 3.0).abs() < 1e-5, "{:?}", model.weights);
        assert!((model.weights[1] + 2.0).abs() < 1e-5);
        assert!((model.intercept - 5.0).abs() < 1e-4);
        let metrics = RegressionMetrics::compute(&model.predict(&d), &d.targets);
        assert!(metrics.r2 > 0.999999);
    }

    #[test]
    fn tolerates_noise_and_still_generalises() {
        let train = linear_dataset(500, 1.0, 2);
        let test = linear_dataset(200, 1.0, 3);
        let model = RidgeRegression::fit(&train, 0.1);
        let metrics = RegressionMetrics::compute(&model.predict(&test), &test.targets);
        assert!(metrics.r2 > 0.95, "{}", metrics.text_summary());
    }

    #[test]
    fn ridge_shrinks_weights() {
        let d = linear_dataset(100, 0.5, 4);
        let ols = RidgeRegression::fit(&d, 0.0);
        let heavy = RidgeRegression::fit(&d, 1e5);
        let norm = |w: &[f64]| w.iter().map(|x| x * x).sum::<f64>();
        assert!(norm(&heavy.weights) < norm(&ols.weights));
    }

    #[test]
    fn handles_collinear_features_via_regularisation() {
        // Second feature is an exact copy of the first: OLS normal equations
        // would be singular; the ridge term keeps the solve well-posed.
        let mut rng = Rng::new(9);
        let rows: Vec<(Vec<f64>, f64)> = (0..100)
            .map(|_| {
                let x = rng.uniform_range(0.0, 1.0);
                (vec![x, x], 2.0 * x + 1.0)
            })
            .collect();
        let d = Dataset::from_raw(
            rows.iter().map(|(f, _)| f.clone()).collect(),
            rows.iter().map(|(_, y)| *y).collect(),
            Target::Walltime,
        );
        let model = RidgeRegression::fit(&d, 1e-3);
        let metrics = RegressionMetrics::compute(&model.predict(&d), &d.targets);
        assert!(metrics.r2 > 0.999);
    }

    #[test]
    #[should_panic]
    fn empty_dataset_is_rejected() {
        RidgeRegression::fit(
            &Dataset::from_raw(Vec::new(), Vec::new(), Target::Walltime),
            1.0,
        );
    }

    #[test]
    #[should_panic]
    fn prediction_checks_feature_width() {
        let d = linear_dataset(10, 0.0, 5);
        let model = RidgeRegression::fit(&d, 0.0);
        model.predict_one(&[1.0]);
    }
}
