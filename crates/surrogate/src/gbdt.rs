//! Gradient-boosted regression trees.
//!
//! The strongest surrogate in the crate: an additive ensemble of shallow
//! regression trees fitted to the residuals of the running prediction
//! (standard least-squares gradient boosting with shrinkage and optional
//! row subsampling for stochastic boosting).

use cgsim_des::rng::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::tree::{RegressionTree, TreeConfig};

/// Boosting hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Number of boosting rounds (trees).
    pub n_trees: usize,
    /// Shrinkage applied to every tree's contribution.
    pub learning_rate: f64,
    /// Base-learner configuration (shallow trees work best).
    pub tree: TreeConfig,
    /// Fraction of rows sampled (without replacement) for each tree;
    /// 1.0 disables subsampling.
    pub subsample: f64,
    /// Seed for the subsampling RNG.
    pub seed: u64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            n_trees: 100,
            learning_rate: 0.1,
            tree: TreeConfig {
                max_depth: 3,
                min_samples_split: 8,
                min_samples_leaf: 4,
            },
            subsample: 1.0,
            seed: 0x9B0057,
        }
    }
}

/// A fitted gradient-boosted ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBoostedTrees {
    /// Initial prediction (training-target mean).
    pub base_prediction: f64,
    /// Shrinkage used at fit time.
    pub learning_rate: f64,
    trees: Vec<RegressionTree>,
    /// Training loss (MSE) after each boosting round.
    pub training_curve: Vec<f64>,
}

impl GradientBoostedTrees {
    /// Fits the ensemble.
    pub fn fit(dataset: &Dataset, config: GbdtConfig) -> Self {
        assert!(!dataset.is_empty(), "cannot fit on an empty dataset");
        assert!(config.n_trees >= 1, "need at least one boosting round");
        assert!(
            config.learning_rate > 0.0 && config.learning_rate <= 1.0,
            "learning rate must be in (0, 1]"
        );
        assert!(
            config.subsample > 0.0 && config.subsample <= 1.0,
            "subsample must be in (0, 1]"
        );

        let n = dataset.len();
        let base_prediction = dataset.targets.iter().sum::<f64>() / n as f64;
        let mut predictions = vec![base_prediction; n];
        let mut trees = Vec::with_capacity(config.n_trees);
        let mut training_curve = Vec::with_capacity(config.n_trees);
        let mut rng = Rng::new(config.seed);

        for _ in 0..config.n_trees {
            // Residuals are the negative gradient of the squared loss.
            let residuals: Vec<f64> = dataset
                .targets
                .iter()
                .zip(&predictions)
                .map(|(&y, &p)| y - p)
                .collect();

            let tree = if config.subsample < 1.0 {
                let sample_size = ((n as f64) * config.subsample).round().max(2.0) as usize;
                let mut indices: Vec<usize> = (0..n).collect();
                // Partial Fisher–Yates: the first `sample_size` entries form
                // the subsample.
                for i in 0..sample_size.min(n - 1) {
                    let j = i + rng.index(n - i);
                    indices.swap(i, j);
                }
                indices.truncate(sample_size.min(n));
                let subset = dataset.subset(&indices);
                let sub_residuals: Vec<f64> = indices.iter().map(|&i| residuals[i]).collect();
                RegressionTree::fit_targets(&subset, &sub_residuals, config.tree)
            } else {
                RegressionTree::fit_targets(dataset, &residuals, config.tree)
            };

            for (pred, row) in predictions.iter_mut().zip(&dataset.features) {
                *pred += config.learning_rate * tree.predict_one(row);
            }
            let mse = dataset
                .targets
                .iter()
                .zip(&predictions)
                .map(|(&y, &p)| (y - p) * (y - p))
                .sum::<f64>()
                / n as f64;
            training_curve.push(mse);
            trees.push(tree);
        }

        GradientBoostedTrees {
            base_prediction,
            learning_rate: config.learning_rate,
            trees,
            training_curve,
        }
    }

    /// Predicts the target for one feature row.
    pub fn predict_one(&self, features: &[f64]) -> f64 {
        self.base_prediction
            + self.learning_rate
                * self
                    .trees
                    .iter()
                    .map(|t| t.predict_one(features))
                    .sum::<f64>()
    }

    /// Predicts every row of a dataset.
    pub fn predict(&self, dataset: &Dataset) -> Vec<f64> {
        dataset
            .features
            .iter()
            .map(|row| self.predict_one(row))
            .collect()
    }

    /// Number of trees in the ensemble.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Target;
    use crate::metrics::RegressionMetrics;
    use cgsim_des::rng::Rng;

    /// Non-linear target with an interaction term and noise.
    fn nonlinear_dataset(rows: usize, noise: f64, seed: u64) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for _ in 0..rows {
            let x0 = rng.uniform_range(0.0, 4.0);
            let x1 = rng.uniform_range(0.0, 4.0);
            let x2 = rng.uniform(); // noise feature
            features.push(vec![x0, x1, x2]);
            let y = (x0 * x1).sin() * 20.0 + x0 * x0 * 3.0 + noise * rng.normal_std();
            targets.push(y);
        }
        Dataset::from_raw(features, targets, Target::Walltime)
    }

    #[test]
    fn training_loss_decreases_monotonically_without_subsampling() {
        let d = nonlinear_dataset(300, 0.0, 1);
        let model = GradientBoostedTrees::fit(
            &d,
            GbdtConfig {
                n_trees: 50,
                subsample: 1.0,
                ..GbdtConfig::default()
            },
        );
        assert_eq!(model.tree_count(), 50);
        for pair in model.training_curve.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-9, "loss went up: {pair:?}");
        }
    }

    #[test]
    fn outperforms_its_base_learner_on_nonlinear_data() {
        // The standard boosting claim: an additive ensemble of shallow trees
        // beats a single tree of the same depth on held-out data.
        let train = nonlinear_dataset(800, 1.0, 2);
        let test = nonlinear_dataset(300, 1.0, 3);
        let config = GbdtConfig {
            n_trees: 150,
            ..GbdtConfig::default()
        };
        let single = crate::tree::RegressionTree::fit(&train, config.tree);
        let boosted = GradientBoostedTrees::fit(&train, config);
        let m_single = RegressionMetrics::compute(&single.predict(&test), &test.targets);
        let m_boost = RegressionMetrics::compute(&boosted.predict(&test), &test.targets);
        assert!(
            m_boost.rmse < m_single.rmse,
            "boosted {} vs single {}",
            m_boost.rmse,
            m_single.rmse
        );
        assert!(m_boost.r2 > 0.8, "{}", m_boost.text_summary());
    }

    #[test]
    fn stochastic_boosting_is_deterministic_in_seed() {
        let d = nonlinear_dataset(300, 0.5, 4);
        let cfg = GbdtConfig {
            n_trees: 30,
            subsample: 0.6,
            seed: 99,
            ..GbdtConfig::default()
        };
        let a = GradientBoostedTrees::fit(&d, cfg);
        let b = GradientBoostedTrees::fit(&d, cfg);
        assert_eq!(a.predict(&d), b.predict(&d));
        let c = GradientBoostedTrees::fit(&d, GbdtConfig { seed: 100, ..cfg });
        assert_ne!(a.predict(&d), c.predict(&d));
    }

    #[test]
    fn single_round_predicts_near_the_mean_plus_one_step() {
        let d = nonlinear_dataset(100, 0.0, 5);
        let model = GradientBoostedTrees::fit(
            &d,
            GbdtConfig {
                n_trees: 1,
                learning_rate: 0.1,
                ..GbdtConfig::default()
            },
        );
        let mean = d.targets.iter().sum::<f64>() / d.len() as f64;
        assert!((model.base_prediction - mean).abs() < 1e-9);
        // One small step cannot stray far from the mean.
        let pred = model.predict_one(&d.features[0]);
        let spread = d
            .targets
            .iter()
            .fold(0.0f64, |acc, &t| acc.max((t - mean).abs()));
        assert!((pred - mean).abs() <= 0.1 * spread + 1e-9);
    }

    #[test]
    #[should_panic]
    fn invalid_learning_rate_is_rejected() {
        GradientBoostedTrees::fit(
            &nonlinear_dataset(50, 0.0, 6),
            GbdtConfig {
                learning_rate: 0.0,
                ..GbdtConfig::default()
            },
        );
    }
}
