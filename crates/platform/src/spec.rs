//! Serde-serialisable platform specification (the paper's JSON input files).
//!
//! CGSim configures a simulation through three JSON files: computational
//! infrastructure, network topology and execution parameters (§3.1). The
//! first two are modelled here as [`PlatformSpec`] (sites + hosts) and
//! [`NetworkSpec`] (links); the execution parameters live in `cgsim-core`.
//!
//! Units follow operational conventions: per-core speed in HS23-like
//! "HEPScore units" (interpreted as normalised operations per second),
//! bandwidth in Gbit/s, latency in milliseconds, memory in GB, storage in TB.

use serde::{Deserialize, Serialize};

use crate::error::PlatformError;

/// WLCG tier of a computing site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Tier {
    /// Tier-0 (CERN): the source of raw data, largest capacity.
    Tier0,
    /// Tier-1: national centres with large storage and compute.
    Tier1,
    /// Tier-2: university-scale analysis sites.
    #[default]
    Tier2,
    /// Tier-3 / opportunistic resources.
    Tier3,
}

impl Tier {
    /// Short display label (`T0` … `T3`).
    pub fn label(self) -> &'static str {
        match self {
            Tier::Tier0 => "T0",
            Tier::Tier1 => "T1",
            Tier::Tier2 => "T2",
            Tier::Tier3 => "T3",
        }
    }
}

/// A homogeneous batch of worker nodes inside a site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Host (worker-node group) name, unique within its site.
    pub name: String,
    /// Number of CPU cores.
    pub cores: u32,
    /// Per-core processing speed in HS23-like units (normalised ops/s).
    pub speed_per_core: f64,
    /// RAM in GB.
    #[serde(default = "default_ram_gb")]
    pub ram_gb: f64,
    /// Local scratch disk in TB.
    #[serde(default = "default_disk_tb")]
    pub disk_tb: f64,
}

fn default_ram_gb() -> f64 {
    2.0 * 64.0
}
fn default_disk_tb() -> f64 {
    10.0
}

impl HostSpec {
    /// Creates a host spec with default RAM/disk.
    pub fn new(name: impl Into<String>, cores: u32, speed_per_core: f64) -> Self {
        HostSpec {
            name: name.into(),
            cores,
            speed_per_core,
            ram_gb: default_ram_gb(),
            disk_tb: default_disk_tb(),
        }
    }
}

/// A computing site (a SimGrid netzone in the paper's architecture).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteSpec {
    /// Site name (e.g. `BNL`, `CERN`, `DESY-ZN`), globally unique.
    pub name: String,
    /// WLCG tier.
    #[serde(default)]
    pub tier: Tier,
    /// Country / region label (used only for reporting).
    #[serde(default)]
    pub country: String,
    /// Worker-node groups.
    pub hosts: Vec<HostSpec>,
    /// Tape+disk storage capacity in TB.
    #[serde(default = "default_storage_tb")]
    pub storage_tb: f64,
    /// Intra-site (LAN) bandwidth in Gbit/s.
    #[serde(default = "default_lan_gbps")]
    pub internal_bandwidth_gbps: f64,
    /// Intra-site latency in milliseconds.
    #[serde(default = "default_lan_latency_ms")]
    pub internal_latency_ms: f64,
    /// Initial calibration multiplier applied to every host's speed
    /// (1.0 = use the nominal HS23 value).
    #[serde(default = "default_speed_multiplier")]
    pub speed_multiplier: f64,
}

fn default_storage_tb() -> f64 {
    1_000.0
}
fn default_lan_gbps() -> f64 {
    100.0
}
fn default_lan_latency_ms() -> f64 {
    0.2
}
fn default_speed_multiplier() -> f64 {
    1.0
}

impl SiteSpec {
    /// Creates a single-host site spec (the common WLCG modelling choice:
    /// one homogeneous worker-node pool per site).
    pub fn uniform(name: impl Into<String>, tier: Tier, cores: u32, speed_per_core: f64) -> Self {
        let name = name.into();
        SiteSpec {
            hosts: vec![HostSpec::new(format!("{name}-wn"), cores, speed_per_core)],
            name,
            tier,
            country: String::new(),
            storage_tb: default_storage_tb(),
            internal_bandwidth_gbps: default_lan_gbps(),
            internal_latency_ms: default_lan_latency_ms(),
            speed_multiplier: default_speed_multiplier(),
        }
    }

    /// Total number of cores across all hosts of the site.
    pub fn total_cores(&self) -> u64 {
        self.hosts.iter().map(|h| h.cores as u64).sum()
    }
}

/// Name of the central main-server node used in link endpoints.
pub const MAIN_SERVER: &str = "main-server";

/// A wide-area network link between two endpoints (site names or
/// [`MAIN_SERVER`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Link name; auto-generated as `from--to` if empty.
    #[serde(default)]
    pub name: String,
    /// Endpoint A.
    pub from: String,
    /// Endpoint B.
    pub to: String,
    /// Bandwidth in Gbit/s.
    pub bandwidth_gbps: f64,
    /// One-way latency in milliseconds.
    pub latency_ms: f64,
}

impl LinkSpec {
    /// Creates a link spec, generating a name from the endpoints.
    pub fn new(
        from: impl Into<String>,
        to: impl Into<String>,
        bandwidth_gbps: f64,
        latency_ms: f64,
    ) -> Self {
        let from = from.into();
        let to = to.into();
        LinkSpec {
            name: format!("{from}--{to}"),
            from,
            to,
            bandwidth_gbps,
            latency_ms,
        }
    }
}

/// Network topology: the set of WAN links. If empty, a star topology centred
/// on the main server is generated automatically (one 10 Gbit/s, 20 ms link
/// per site), which matches the paper's default deployment where the main
/// server is "linked to all sites in the platform".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct NetworkSpec {
    /// WAN links.
    #[serde(default)]
    pub links: Vec<LinkSpec>,
}

/// Full platform specification (infrastructure + network).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Human-readable platform name.
    #[serde(default)]
    pub name: String,
    /// Computing sites.
    pub sites: Vec<SiteSpec>,
    /// WAN topology.
    #[serde(default)]
    pub network: NetworkSpec,
}

impl PlatformSpec {
    /// Creates an empty spec with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        PlatformSpec {
            name: name.into(),
            sites: Vec::new(),
            network: NetworkSpec::default(),
        }
    }

    /// Adds a site.
    pub fn with_site(mut self, site: SiteSpec) -> Self {
        self.sites.push(site);
        self
    }

    /// Adds a WAN link.
    pub fn with_link(mut self, link: LinkSpec) -> Self {
        self.network.links.push(link);
        self
    }

    /// Serialises to pretty JSON (the paper's input file format).
    pub fn to_json(&self) -> Result<String, PlatformError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Parses from JSON.
    pub fn from_json(json: &str) -> Result<Self, PlatformError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Writes to a JSON file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), PlatformError> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Loads from a JSON file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, PlatformError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
    }

    /// Basic sanity checks on all numeric parameters and name uniqueness.
    pub fn validate(&self) -> Result<(), PlatformError> {
        if self.sites.is_empty() {
            return Err(PlatformError::EmptyPlatform);
        }
        let mut names = std::collections::HashSet::new();
        for site in &self.sites {
            if !names.insert(site.name.clone()) {
                return Err(PlatformError::DuplicateName(site.name.clone()));
            }
            if site.name == MAIN_SERVER {
                return Err(PlatformError::DuplicateName(format!(
                    "site name {MAIN_SERVER} is reserved"
                )));
            }
            if site.hosts.is_empty() {
                return Err(PlatformError::InvalidParameter(format!(
                    "site {} has no hosts",
                    site.name
                )));
            }
            let mut host_names = std::collections::HashSet::new();
            for host in &site.hosts {
                if !host_names.insert(host.name.clone()) {
                    return Err(PlatformError::DuplicateName(format!(
                        "{}/{}",
                        site.name, host.name
                    )));
                }
                if host.cores == 0 {
                    return Err(PlatformError::InvalidParameter(format!(
                        "host {} has zero cores",
                        host.name
                    )));
                }
                if !is_strictly_positive(host.speed_per_core) {
                    return Err(PlatformError::InvalidParameter(format!(
                        "host {} has non-positive speed",
                        host.name
                    )));
                }
            }
            if !is_strictly_positive(site.speed_multiplier) {
                return Err(PlatformError::InvalidParameter(format!(
                    "site {} has non-positive speed multiplier",
                    site.name
                )));
            }
            if !is_strictly_positive(site.internal_bandwidth_gbps) {
                return Err(PlatformError::InvalidParameter(format!(
                    "site {} has non-positive internal bandwidth",
                    site.name
                )));
            }
        }
        for link in &self.network.links {
            for endpoint in [&link.from, &link.to] {
                if endpoint != MAIN_SERVER && !names.contains(endpoint.as_str()) {
                    return Err(PlatformError::UnknownEndpoint(endpoint.clone()));
                }
            }
            if !is_strictly_positive(link.bandwidth_gbps) || !is_non_negative(link.latency_ms) {
                return Err(PlatformError::InvalidParameter(format!(
                    "link {} has invalid bandwidth/latency",
                    link.name
                )));
            }
        }
        Ok(())
    }

    /// Total core count across the platform.
    pub fn total_cores(&self) -> u64 {
        self.sites.iter().map(|s| s.total_cores()).sum()
    }
}

/// `x > 0`, with NaN rejected (NaN compares as incomparable, not positive).
fn is_strictly_positive(x: f64) -> bool {
    x.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater)
}

/// `x >= 0`, with NaN rejected.
fn is_non_negative(x: f64) -> bool {
    matches!(
        x.partial_cmp(&0.0),
        Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
    )
}

/// Converts Gbit/s to bytes/s.
pub fn gbps_to_bytes_per_sec(gbps: f64) -> f64 {
    gbps * 1e9 / 8.0
}

/// Converts milliseconds to seconds.
pub fn ms_to_secs(ms: f64) -> f64 {
    ms / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> PlatformSpec {
        PlatformSpec::new("mini")
            .with_site(SiteSpec::uniform("CERN", Tier::Tier0, 2000, 12.0))
            .with_site(SiteSpec::uniform("BNL", Tier::Tier1, 1000, 10.0))
            .with_link(LinkSpec::new("CERN", MAIN_SERVER, 100.0, 5.0))
            .with_link(LinkSpec::new("BNL", MAIN_SERVER, 40.0, 40.0))
    }

    #[test]
    fn json_roundtrip_preserves_spec() {
        let spec = sample_spec();
        let json = spec.to_json().unwrap();
        let back = PlatformSpec::from_json(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn defaults_are_applied_when_fields_missing() {
        let json = r#"{
            "sites": [
                {"name": "X", "hosts": [{"name": "x-wn", "cores": 8, "speed_per_core": 10.0}]}
            ]
        }"#;
        let spec = PlatformSpec::from_json(json).unwrap();
        assert_eq!(spec.sites[0].tier, Tier::Tier2);
        assert_eq!(spec.sites[0].speed_multiplier, 1.0);
        assert!(spec.sites[0].internal_bandwidth_gbps > 0.0);
        assert!(spec.network.links.is_empty());
        spec.validate().unwrap();
    }

    #[test]
    fn validate_accepts_sane_spec() {
        sample_spec().validate().unwrap();
    }

    #[test]
    fn validate_rejects_empty_platform() {
        assert_eq!(
            PlatformSpec::new("empty").validate(),
            Err(PlatformError::EmptyPlatform)
        );
    }

    #[test]
    fn validate_rejects_duplicate_sites() {
        let spec = PlatformSpec::new("dup")
            .with_site(SiteSpec::uniform("A", Tier::Tier2, 10, 10.0))
            .with_site(SiteSpec::uniform("A", Tier::Tier2, 10, 10.0));
        assert!(matches!(
            spec.validate(),
            Err(PlatformError::DuplicateName(_))
        ));
    }

    #[test]
    fn validate_rejects_zero_cores() {
        let mut spec = sample_spec();
        spec.sites[0].hosts[0].cores = 0;
        assert!(matches!(
            spec.validate(),
            Err(PlatformError::InvalidParameter(_))
        ));
    }

    #[test]
    fn validate_rejects_unknown_link_endpoint() {
        let spec = sample_spec().with_link(LinkSpec::new("CERN", "NOWHERE", 1.0, 1.0));
        assert!(matches!(
            spec.validate(),
            Err(PlatformError::UnknownEndpoint(_))
        ));
    }

    #[test]
    fn validate_rejects_reserved_site_name() {
        let spec = PlatformSpec::new("bad").with_site(SiteSpec::uniform(
            MAIN_SERVER,
            Tier::Tier2,
            10,
            10.0,
        ));
        assert!(matches!(
            spec.validate(),
            Err(PlatformError::DuplicateName(_))
        ));
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(gbps_to_bytes_per_sec(8.0), 1e9);
        assert_eq!(ms_to_secs(250.0), 0.25);
    }

    #[test]
    fn total_cores_sums_sites() {
        assert_eq!(sample_spec().total_cores(), 3000);
    }

    #[test]
    fn tier_labels() {
        assert_eq!(Tier::Tier0.label(), "T0");
        assert_eq!(Tier::Tier3.label(), "T3");
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("cgsim-platform-spec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("platform.json");
        let spec = sample_spec();
        spec.save(&path).unwrap();
        let loaded = PlatformSpec::load(&path).unwrap();
        assert_eq!(spec, loaded);
        std::fs::remove_file(path).ok();
    }
}
