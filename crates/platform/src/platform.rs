//! The resolved runtime platform.
//!
//! [`Platform::build`] validates a [`PlatformSpec`], assigns typed identifiers
//! to sites, hosts and links, constructs the WAN graph (adding the main
//! server and, when no links are configured, a default star topology), adds
//! per-site LAN links, and precomputes lowest-latency routes between every
//! pair of endpoints. The simulation core only ever works with this resolved
//! form.

use std::collections::HashMap;

use cgsim_des::define_id;
use serde::{Deserialize, Serialize};

use crate::error::PlatformError;
use crate::spec::{gbps_to_bytes_per_sec, ms_to_secs, PlatformSpec, Tier, MAIN_SERVER};
use crate::topology::{EdgeProps, Graph};

define_id!(
    /// Identifier of a computing site.
    SiteId,
    "site"
);
define_id!(
    /// Identifier of a worker-node group.
    HostId,
    "host"
);
define_id!(
    /// Identifier of a network link (WAN or site LAN).
    LinkId,
    "link"
);

/// A routable endpoint: a site or the central main server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeId {
    /// The central main server (job broker / data source).
    MainServer,
    /// A computing site.
    Site(SiteId),
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeId::MainServer => write!(f, "main-server"),
            NodeId::Site(s) => write!(f, "{s}"),
        }
    }
}

/// A worker-node group inside a site (resolved form of `HostSpec`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Host {
    /// Host identifier.
    pub id: HostId,
    /// Owning site.
    pub site: SiteId,
    /// Host name.
    pub name: String,
    /// Number of cores.
    pub cores: u32,
    /// Nominal per-core speed (HS23-like units).
    pub speed_per_core: f64,
    /// RAM in GB.
    pub ram_gb: f64,
    /// Scratch disk in TB.
    pub disk_tb: f64,
}

/// A computing site (resolved form of `SiteSpec`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Site identifier.
    pub id: SiteId,
    /// Site name.
    pub name: String,
    /// WLCG tier.
    pub tier: Tier,
    /// Country / region label.
    pub country: String,
    /// Worker-node groups.
    pub hosts: Vec<HostId>,
    /// Total core count.
    pub total_cores: u64,
    /// Storage capacity in TB.
    pub storage_tb: f64,
    /// LAN link of this site (every transfer that terminates here crosses it).
    pub lan_link: LinkId,
    /// Calibration multiplier applied to host speeds.
    pub speed_multiplier: f64,
}

/// A network link (resolved form of `LinkSpec`, plus generated LAN links).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Link identifier.
    pub id: LinkId,
    /// Link name.
    pub name: String,
    /// Bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// One-way latency in seconds.
    pub latency_s: f64,
    /// True for automatically generated site-internal LAN links.
    pub is_lan: bool,
}

/// A resolved route between two endpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// Links traversed, in order.
    pub links: Vec<LinkId>,
    /// Total one-way latency in seconds.
    pub latency_s: f64,
    /// Nominal bottleneck bandwidth in bytes/s (minimum over links).
    pub bottleneck_bps: f64,
}

/// The resolved, validated platform.
#[derive(Debug, Clone)]
pub struct Platform {
    name: String,
    sites: Vec<Site>,
    hosts: Vec<Host>,
    links: Vec<Link>,
    site_names: HashMap<String, SiteId>,
    routes: HashMap<(NodeId, NodeId), Route>,
}

impl Platform {
    /// Builds a platform from its specification.
    pub fn build(spec: &PlatformSpec) -> Result<Self, PlatformError> {
        spec.validate()?;

        let mut sites = Vec::with_capacity(spec.sites.len());
        let mut hosts = Vec::new();
        let mut links = Vec::new();
        let mut site_names = HashMap::new();

        // LAN links first (one per site).
        for (i, s) in spec.sites.iter().enumerate() {
            let site_id = SiteId::new(i);
            let lan_link = LinkId::new(links.len());
            links.push(Link {
                id: lan_link,
                name: format!("{}-lan", s.name),
                bandwidth_bps: gbps_to_bytes_per_sec(s.internal_bandwidth_gbps),
                latency_s: ms_to_secs(s.internal_latency_ms),
                is_lan: true,
            });
            let mut host_ids = Vec::with_capacity(s.hosts.len());
            for h in &s.hosts {
                let host_id = HostId::new(hosts.len());
                hosts.push(Host {
                    id: host_id,
                    site: site_id,
                    name: h.name.clone(),
                    cores: h.cores,
                    speed_per_core: h.speed_per_core,
                    ram_gb: h.ram_gb,
                    disk_tb: h.disk_tb,
                });
                host_ids.push(host_id);
            }
            sites.push(Site {
                id: site_id,
                name: s.name.clone(),
                tier: s.tier,
                country: s.country.clone(),
                hosts: host_ids,
                total_cores: s.total_cores(),
                storage_tb: s.storage_tb,
                lan_link,
                speed_multiplier: s.speed_multiplier,
            });
            site_names.insert(s.name.clone(), site_id);
        }

        // Build the WAN graph: node 0 = main server, node i+1 = site i.
        let mut graph = Graph::new();
        let server_node = graph.add_node();
        let site_nodes: Vec<usize> = sites.iter().map(|_| graph.add_node()).collect();
        // edge index -> LinkId
        let mut edge_links: Vec<LinkId> = Vec::new();

        let wan_links: Vec<crate::spec::LinkSpec> = if spec.network.links.is_empty() {
            // Default star topology: every site connected to the main server.
            spec.sites
                .iter()
                .map(|s| crate::spec::LinkSpec::new(s.name.clone(), MAIN_SERVER, 10.0, 20.0))
                .collect()
        } else {
            spec.network.links.clone()
        };

        for l in &wan_links {
            let link_id = LinkId::new(links.len());
            links.push(Link {
                id: link_id,
                name: if l.name.is_empty() {
                    format!("{}--{}", l.from, l.to)
                } else {
                    l.name.clone()
                },
                bandwidth_bps: gbps_to_bytes_per_sec(l.bandwidth_gbps),
                latency_s: ms_to_secs(l.latency_ms),
                is_lan: false,
            });
            let node_of = |endpoint: &str| -> Result<usize, PlatformError> {
                if endpoint == MAIN_SERVER {
                    Ok(server_node)
                } else {
                    site_names
                        .get(endpoint)
                        .map(|id| site_nodes[id.index()])
                        .ok_or_else(|| PlatformError::UnknownEndpoint(endpoint.to_string()))
                }
            };
            let a = node_of(&l.from)?;
            let b = node_of(&l.to)?;
            graph.add_edge(
                a,
                b,
                EdgeProps {
                    latency_s: ms_to_secs(l.latency_ms),
                    bandwidth_bps: gbps_to_bytes_per_sec(l.bandwidth_gbps),
                },
            );
            edge_links.push(link_id);
        }

        // Precompute routes between every pair of endpoints.
        let node_ids: Vec<NodeId> = std::iter::once(NodeId::MainServer)
            .chain(sites.iter().map(|s| NodeId::Site(s.id)))
            .collect();
        let graph_node = |n: NodeId| -> usize {
            match n {
                NodeId::MainServer => server_node,
                NodeId::Site(s) => site_nodes[s.index()],
            }
        };
        let mut routes = HashMap::new();
        for &from in &node_ids {
            for &to in &node_ids {
                if from == to {
                    routes.insert(
                        (from, to),
                        Route {
                            links: Vec::new(),
                            latency_s: 0.0,
                            bottleneck_bps: f64::INFINITY,
                        },
                    );
                    continue;
                }
                let path = graph
                    .shortest_path(graph_node(from), graph_node(to))
                    .ok_or(PlatformError::Unreachable {
                        from: from.to_string(),
                        to: to.to_string(),
                    })?;
                let mut route_links: Vec<LinkId> =
                    path.edges.iter().map(|&e| edge_links[e]).collect();
                // Transfers terminating (or originating) at a site also cross
                // that site's LAN link.
                if let NodeId::Site(s) = from {
                    route_links.insert(0, sites[s.index()].lan_link);
                }
                if let NodeId::Site(s) = to {
                    route_links.push(sites[s.index()].lan_link);
                }
                let latency: f64 = route_links.iter().map(|l| links[l.index()].latency_s).sum();
                let bottleneck = route_links
                    .iter()
                    .map(|l| links[l.index()].bandwidth_bps)
                    .fold(f64::INFINITY, f64::min);
                routes.insert(
                    (from, to),
                    Route {
                        links: route_links,
                        latency_s: latency,
                        bottleneck_bps: bottleneck,
                    },
                );
            }
        }

        Ok(Platform {
            name: spec.name.clone(),
            sites,
            hosts,
            links,
            site_names,
            routes,
        })
    }

    /// Platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// All sites.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// A site by identifier.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.index()]
    }

    /// Looks a site up by name.
    pub fn site_by_name(&self, name: &str) -> Option<SiteId> {
        self.site_names.get(name).copied()
    }

    /// All hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// A host by identifier.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.index()]
    }

    /// Hosts belonging to a site.
    pub fn hosts_of(&self, site: SiteId) -> impl Iterator<Item = &Host> {
        self.sites[site.index()]
            .hosts
            .iter()
            .map(move |&h| &self.hosts[h.index()])
    }

    /// All links (WAN + LAN).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// A link by identifier.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// The precomputed route between two endpoints.
    pub fn route(&self, from: NodeId, to: NodeId) -> &Route {
        self.routes
            .get(&(from, to))
            .expect("routes are precomputed for all endpoint pairs")
    }

    /// Effective per-core speed of a site: the core-weighted average of its
    /// hosts' nominal speeds times the site calibration multiplier. This is
    /// the quantity the calibration experiments tune (paper §4.2 identifies
    /// CPU core processing speed as the dominant calibration parameter).
    pub fn effective_speed(&self, site: SiteId) -> f64 {
        let s = &self.sites[site.index()];
        let mut weighted = 0.0;
        let mut cores = 0.0;
        for h in self.hosts_of(site) {
            weighted += h.speed_per_core * h.cores as f64;
            cores += h.cores as f64;
        }
        if cores == 0.0 {
            0.0
        } else {
            (weighted / cores) * s.speed_multiplier
        }
    }

    /// Current calibration multiplier of a site.
    pub fn speed_multiplier(&self, site: SiteId) -> f64 {
        self.sites[site.index()].speed_multiplier
    }

    /// Sets the calibration multiplier of a site.
    pub fn set_speed_multiplier(&mut self, site: SiteId, multiplier: f64) {
        assert!(
            multiplier.is_finite() && multiplier > 0.0,
            "speed multiplier must be positive"
        );
        self.sites[site.index()].speed_multiplier = multiplier;
    }

    /// Total number of cores across the platform.
    pub fn total_cores(&self) -> u64 {
        self.sites.iter().map(|s| s.total_cores).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{LinkSpec, PlatformSpec, SiteSpec};

    fn three_site_spec() -> PlatformSpec {
        PlatformSpec::new("test")
            .with_site(SiteSpec::uniform("CERN", Tier::Tier0, 2000, 12.0))
            .with_site(SiteSpec::uniform("BNL", Tier::Tier1, 1000, 10.0))
            .with_site(SiteSpec::uniform("DESY-ZN", Tier::Tier2, 400, 8.0))
            .with_link(LinkSpec::new("CERN", MAIN_SERVER, 100.0, 5.0))
            .with_link(LinkSpec::new("BNL", MAIN_SERVER, 40.0, 45.0))
            .with_link(LinkSpec::new("DESY-ZN", MAIN_SERVER, 20.0, 15.0))
            .with_link(LinkSpec::new("CERN", "DESY-ZN", 50.0, 8.0))
    }

    #[test]
    fn build_resolves_sites_hosts_links() {
        let platform = Platform::build(&three_site_spec()).unwrap();
        assert_eq!(platform.site_count(), 3);
        assert_eq!(platform.hosts().len(), 3);
        // 3 LAN + 4 WAN links.
        assert_eq!(platform.links().len(), 7);
        assert_eq!(platform.total_cores(), 3400);
        let bnl = platform.site_by_name("BNL").unwrap();
        assert_eq!(platform.site(bnl).tier, Tier::Tier1);
        assert_eq!(platform.site(bnl).total_cores, 1000);
        assert!(platform.site_by_name("NOPE").is_none());
    }

    #[test]
    fn routes_include_lan_links() {
        let platform = Platform::build(&three_site_spec()).unwrap();
        let cern = platform.site_by_name("CERN").unwrap();
        let route = platform.route(NodeId::MainServer, NodeId::Site(cern));
        // main server -> CERN WAN link + CERN LAN link.
        assert_eq!(route.links.len(), 2);
        assert!(route.links.iter().any(|&l| platform.link(l).is_lan));
        assert!(route.latency_s > 0.0);
        assert!(route.bottleneck_bps > 0.0);
    }

    #[test]
    fn site_to_site_prefers_direct_link() {
        let platform = Platform::build(&three_site_spec()).unwrap();
        let cern = platform.site_by_name("CERN").unwrap();
        let desy = platform.site_by_name("DESY-ZN").unwrap();
        let route = platform.route(NodeId::Site(cern), NodeId::Site(desy));
        // CERN LAN + direct CERN--DESY link + DESY LAN.
        assert_eq!(route.links.len(), 3);
        let wan_names: Vec<_> = route
            .links
            .iter()
            .filter(|&&l| !platform.link(l).is_lan)
            .map(|&l| platform.link(l).name.clone())
            .collect();
        assert_eq!(wan_names, vec!["CERN--DESY-ZN".to_string()]);
    }

    #[test]
    fn self_route_is_empty() {
        let platform = Platform::build(&three_site_spec()).unwrap();
        let cern = platform.site_by_name("CERN").unwrap();
        let route = platform.route(NodeId::Site(cern), NodeId::Site(cern));
        assert!(route.links.is_empty());
        assert_eq!(route.latency_s, 0.0);
    }

    #[test]
    fn default_star_topology_when_no_links() {
        let spec = PlatformSpec::new("star")
            .with_site(SiteSpec::uniform("A", Tier::Tier2, 100, 10.0))
            .with_site(SiteSpec::uniform("B", Tier::Tier2, 100, 10.0));
        let platform = Platform::build(&spec).unwrap();
        let a = platform.site_by_name("A").unwrap();
        let b = platform.site_by_name("B").unwrap();
        // A -> B goes through the main server: A LAN + A--server + server--B + B LAN.
        let route = platform.route(NodeId::Site(a), NodeId::Site(b));
        assert_eq!(route.links.len(), 4);
    }

    #[test]
    fn effective_speed_uses_multiplier() {
        let mut platform = Platform::build(&three_site_spec()).unwrap();
        let bnl = platform.site_by_name("BNL").unwrap();
        assert!((platform.effective_speed(bnl) - 10.0).abs() < 1e-12);
        platform.set_speed_multiplier(bnl, 0.5);
        assert!((platform.effective_speed(bnl) - 5.0).abs() < 1e-12);
        assert_eq!(platform.speed_multiplier(bnl), 0.5);
    }

    #[test]
    fn disconnected_platform_is_rejected() {
        // Explicit network that leaves site B unconnected.
        let spec = PlatformSpec::new("broken")
            .with_site(SiteSpec::uniform("A", Tier::Tier2, 100, 10.0))
            .with_site(SiteSpec::uniform("B", Tier::Tier2, 100, 10.0))
            .with_link(LinkSpec::new("A", MAIN_SERVER, 10.0, 10.0));
        let err = Platform::build(&spec).unwrap_err();
        assert!(matches!(err, PlatformError::Unreachable { .. }));
    }

    #[test]
    fn hosts_of_iterates_site_hosts() {
        let platform = Platform::build(&three_site_spec()).unwrap();
        let cern = platform.site_by_name("CERN").unwrap();
        let hosts: Vec<_> = platform.hosts_of(cern).collect();
        assert_eq!(hosts.len(), 1);
        assert_eq!(hosts[0].cores, 2000);
        assert_eq!(hosts[0].site, cern);
    }

    #[test]
    #[should_panic]
    fn negative_multiplier_is_rejected() {
        let mut platform = Platform::build(&three_site_spec()).unwrap();
        let cern = platform.site_by_name("CERN").unwrap();
        platform.set_speed_multiplier(cern, -1.0);
    }
}
