//! # cgsim-platform — grid platform model
//!
//! CGSim's input layer describes the simulated computing grid through JSON
//! configuration: the computational infrastructure (sites and their hosts)
//! and the network topology (links between sites and the central main
//! server). This crate provides:
//!
//! * the serde-serialisable **specification** types ([`spec`]) that mirror the
//!   paper's JSON input files,
//! * the resolved, validated **runtime platform** ([`platform::Platform`])
//!   with typed identifiers, fast name lookup and per-site calibration
//!   multipliers,
//! * the **network topology graph** ([`topology`]) with shortest-path routing
//!   between any two endpoints (sites or the main server), mirroring
//!   SimGrid's netzone routing,
//! * **presets** ([`presets`]) generating WLCG-like platforms: a configurable
//!   number of tiered sites (Tier-0/1/2) with 100–2000 cores each,
//!   HEPScore23-style per-core speeds and realistic WAN latencies, as used by
//!   the paper's ATLAS case study and scalability experiments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod availability;
pub mod error;
pub mod platform;
pub mod presets;
pub mod spec;
pub mod topology;

pub use availability::{GridAvailability, SiteAvailability};
pub use error::PlatformError;
pub use platform::{Host, HostId, Link, LinkId, NodeId, Platform, Route, Site, SiteId};
pub use presets::{example_platform, wlcg_platform, PresetOptions};
pub use spec::{HostSpec, LinkSpec, NetworkSpec, PlatformSpec, SiteSpec, Tier};
