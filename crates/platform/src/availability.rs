//! Dynamic availability state of a platform under fault injection.
//!
//! The resolved [`Platform`](crate::Platform) is immutable during a run; the
//! fault-injection subsystem instead tracks *availability* — which sites are
//! up, how many cores each has lost, and at what fraction of nominal
//! bandwidth each link runs — in this separate, cheaply indexable structure
//! owned by the simulation core.
//!
//! All three kinds of state **nest**, because independent fault processes
//! can overlap on the same target (a random outage landing inside a
//! maintenance window, two degradation processes hitting one link):
//!
//! * site outages hold a per-site down-counter; the site only comes back up
//!   when every overlapping outage has ended,
//! * partial node losses stack (LIFO); a restore returns the most recent
//!   outstanding loss, and the lost-core total is the sum of the stack,
//! * link degradations hold a counter plus the *most severe* active factor;
//!   the link only returns to nominal bandwidth when every overlapping
//!   degradation has ended.
//!
//! This makes replaying any interleaving of begin/end events idempotent and
//! order-insensitive per target.

use crate::platform::{LinkId, Platform, SiteId};

/// Availability state of one site.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteAvailability {
    /// Number of overlapping outages currently affecting the site
    /// (0 = the site is up).
    pub down_count: u32,
    /// Active partial node losses, in begin order (restores pop from the
    /// back). The site's lost-core total is the sum.
    pub active_losses: Vec<u64>,
}

/// Availability state of one link.
#[derive(Debug, Clone, PartialEq)]
struct LinkAvailability {
    /// Number of overlapping degradations currently affecting the link.
    degrade_count: u32,
    /// Current bandwidth factor (1.0 = nominal; the most severe factor of
    /// the active degradations while any are in effect).
    factor: f64,
}

impl Default for LinkAvailability {
    fn default() -> Self {
        LinkAvailability {
            degrade_count: 0,
            factor: 1.0,
        }
    }
}

/// Dynamic availability of every site and link of a platform.
#[derive(Debug, Clone, PartialEq)]
pub struct GridAvailability {
    sites: Vec<SiteAvailability>,
    links: Vec<LinkAvailability>,
}

impl GridAvailability {
    /// Everything up, at nominal capacity.
    pub fn all_up(platform: &Platform) -> Self {
        GridAvailability {
            sites: vec![SiteAvailability::default(); platform.site_count()],
            links: vec![LinkAvailability::default(); platform.links().len()],
        }
    }

    /// True when the site currently accepts and runs work.
    #[inline]
    pub fn site_up(&self, site: SiteId) -> bool {
        self.sites[site.index()].down_count == 0
    }

    /// Registers the start of an outage. Returns `true` when this outage
    /// transitions the site from up to down (the caller should kill work).
    pub fn site_down_begin(&mut self, site: SiteId) -> bool {
        let state = &mut self.sites[site.index()];
        state.down_count += 1;
        state.down_count == 1
    }

    /// Registers the end of an outage. Returns `true` when this recovery
    /// transitions the site from down to up (the caller should resume work).
    /// A recovery without a matching outage is a no-op.
    pub fn site_down_end(&mut self, site: SiteId) -> bool {
        let state = &mut self.sites[site.index()];
        if state.down_count == 0 {
            return false;
        }
        state.down_count -= 1;
        state.down_count == 0
    }

    /// Cores currently lost at the site across all active node losses.
    #[inline]
    pub fn cores_lost(&self, site: SiteId) -> u64 {
        self.sites[site.index()].active_losses.iter().sum()
    }

    /// Registers a partial node loss of `lost` cores (stacking on top of
    /// any losses already active).
    pub fn node_loss_begin(&mut self, site: SiteId, lost: u64) {
        self.sites[site.index()].active_losses.push(lost);
    }

    /// Ends the most recent outstanding node loss, returning how many cores
    /// come back (0 when no loss is active).
    pub fn node_loss_end(&mut self, site: SiteId) -> u64 {
        self.sites[site.index()].active_losses.pop().unwrap_or(0)
    }

    /// Current bandwidth factor of a link (1.0 = nominal).
    #[inline]
    pub fn link_factor(&self, link: LinkId) -> f64 {
        self.links[link.index()].factor
    }

    /// Registers a link degradation to `factor` (clamped to `(0, 1]`).
    /// Overlapping degradations keep the most severe active factor.
    pub fn link_degrade_begin(&mut self, link: LinkId, factor: f64) {
        let state = &mut self.links[link.index()];
        state.degrade_count += 1;
        state.factor = state.factor.min(factor.clamp(1e-6, 1.0));
    }

    /// Ends one link degradation; the link returns to nominal bandwidth only
    /// when no overlapping degradation remains. An end without a matching
    /// begin is a no-op.
    pub fn link_degrade_end(&mut self, link: LinkId) {
        let state = &mut self.links[link.index()];
        if state.degrade_count == 0 {
            return;
        }
        state.degrade_count -= 1;
        if state.degrade_count == 0 {
            state.factor = 1.0;
        }
    }

    /// Number of sites currently down.
    pub fn sites_down(&self) -> usize {
        self.sites.iter().filter(|s| s.down_count > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::example_platform;

    fn availability() -> (Platform, GridAvailability) {
        let platform = Platform::build(&example_platform()).unwrap();
        let avail = GridAvailability::all_up(&platform);
        (platform, avail)
    }

    #[test]
    fn starts_all_up_at_nominal() {
        let (platform, avail) = availability();
        for s in platform.sites() {
            assert!(avail.site_up(s.id));
            assert_eq!(avail.cores_lost(s.id), 0);
        }
        for l in platform.links() {
            assert_eq!(avail.link_factor(l.id), 1.0);
        }
        assert_eq!(avail.sites_down(), 0);
    }

    #[test]
    fn outages_nest() {
        let (_, mut avail) = availability();
        let site = SiteId::new(1);
        assert!(avail.site_down_begin(site)); // up -> down
        assert!(!avail.site_down_begin(site)); // already down
        assert!(!avail.site_up(site));
        assert_eq!(avail.sites_down(), 1);
        assert!(!avail.site_down_end(site)); // still one outage left
        assert!(!avail.site_up(site));
        assert!(avail.site_down_end(site)); // down -> up
        assert!(avail.site_up(site));
        // Spurious recovery is a no-op.
        assert!(!avail.site_down_end(site));
        assert!(avail.site_up(site));
    }

    #[test]
    fn node_losses_stack_and_pop() {
        let (_, mut avail) = availability();
        let site = SiteId::new(0);
        avail.node_loss_begin(site, 100);
        avail.node_loss_begin(site, 40);
        assert_eq!(avail.cores_lost(site), 140);
        assert_eq!(avail.node_loss_end(site), 40);
        assert_eq!(avail.cores_lost(site), 100);
        assert_eq!(avail.node_loss_end(site), 100);
        assert_eq!(avail.cores_lost(site), 0);
        // Spurious restore is a no-op.
        assert_eq!(avail.node_loss_end(site), 0);
    }

    #[test]
    fn link_degradations_nest_keeping_the_most_severe_factor() {
        let (_, mut avail) = availability();
        let link = LinkId::new(0);
        avail.link_degrade_begin(link, 0.5);
        assert_eq!(avail.link_factor(link), 0.5);
        avail.link_degrade_begin(link, 0.25);
        assert_eq!(avail.link_factor(link), 0.25);
        // One process ends while the other is still active: the link must
        // stay degraded, not snap back to nominal.
        avail.link_degrade_end(link);
        assert!(avail.link_factor(link) < 1.0);
        avail.link_degrade_end(link);
        assert_eq!(avail.link_factor(link), 1.0);
        // Spurious end is a no-op; factors are clamped positive.
        avail.link_degrade_end(link);
        assert_eq!(avail.link_factor(link), 1.0);
        avail.link_degrade_begin(link, 0.0);
        assert!(avail.link_factor(link) > 0.0);
        avail.link_degrade_end(link);
    }
}
