//! Error type for platform construction and configuration parsing.

use std::fmt;

/// Errors raised while parsing or validating a platform configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// The specification references a site name that does not exist.
    UnknownSite(String),
    /// Two sites (or hosts within a site) share the same name.
    DuplicateName(String),
    /// A numeric parameter is out of range (message explains which).
    InvalidParameter(String),
    /// The platform has no sites.
    EmptyPlatform,
    /// A link references an endpoint that is neither a site nor the main server.
    UnknownEndpoint(String),
    /// Two endpoints are not connected by any sequence of links.
    Unreachable {
        /// Route origin.
        from: String,
        /// Route destination.
        to: String,
    },
    /// JSON (de)serialisation failure.
    Serde(String),
    /// I/O failure while reading or writing a configuration file.
    Io(String),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownSite(name) => write!(f, "unknown site: {name}"),
            PlatformError::DuplicateName(name) => write!(f, "duplicate name: {name}"),
            PlatformError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            PlatformError::EmptyPlatform => write!(f, "platform has no sites"),
            PlatformError::UnknownEndpoint(name) => write!(f, "unknown link endpoint: {name}"),
            PlatformError::Unreachable { from, to } => {
                write!(f, "no route between {from} and {to}")
            }
            PlatformError::Serde(msg) => write!(f, "configuration parse error: {msg}"),
            PlatformError::Io(msg) => write!(f, "configuration I/O error: {msg}"),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<std::io::Error> for PlatformError {
    fn from(e: std::io::Error) -> Self {
        PlatformError::Io(e.to_string())
    }
}

impl From<serde_json::Error> for PlatformError {
    fn from(e: serde_json::Error) -> Self {
        PlatformError::Serde(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(PlatformError::UnknownSite("BNL".into())
            .to_string()
            .contains("BNL"));
        assert!(PlatformError::Unreachable {
            from: "A".into(),
            to: "B".into()
        }
        .to_string()
        .contains("A"));
        assert!(PlatformError::EmptyPlatform
            .to_string()
            .contains("no sites"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: PlatformError = io.into();
        assert!(matches!(err, PlatformError::Io(_)));
    }
}
