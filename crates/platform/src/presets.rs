//! Platform presets: WLCG-like grids for the paper's experiments.
//!
//! The paper's case study models the subset of the WLCG that supports the
//! ATLAS experiment: roughly 200 centres across 40+ countries, with per-site
//! capacities of 100–2,000 cores in the scalability experiments and nominal
//! per-core speeds taken from HEPScore23 benchmarking. Production site
//! configurations are not public at that granularity, so [`wlcg_platform`]
//! generates a synthetic but statistically faithful equivalent:
//!
//! * one Tier-0 (CERN-like) site, ~20 % Tier-1 sites, the rest Tier-2,
//! * core counts drawn from tier-dependent ranges (Tier-0 the largest,
//!   Tier-2 sites in the 100–2,000 core range used in Fig. 4),
//! * per-core HS23-like speeds with realistic heterogeneity (±30 %),
//! * WAN links whose latency grows with a synthetic "distance from CERN" and
//!   whose bandwidth decreases with tier,
//! * the first sites reuse real ATLAS site names (BNL, CERN, DESY-ZN,
//!   LRZ-LMU, …) so monitoring output looks like the paper's Table 1.

use cgsim_des::rng::Rng;

use crate::spec::{HostSpec, LinkSpec, PlatformSpec, SiteSpec, Tier, MAIN_SERVER};

/// Well-known ATLAS site names used for the first generated sites (the same
/// names appear in the paper's Table 1 and Fig. 3).
pub const ATLAS_SITE_NAMES: &[&str] = &[
    "CERN",
    "BNL",
    "TRIUMF",
    "FZK-LCG2",
    "IN2P3-CC",
    "RAL-LCG2",
    "CNAF",
    "PIC",
    "NDGF-T1",
    "SARA-MATRIX",
    "DESY-ZN",
    "LRZ-LMU",
    "MWT2",
    "AGLT2",
    "SWT2",
    "NET2",
    "SLAC",
    "UKI-NORTHGRID",
    "IFIC-LCG2",
    "TOKYO-LCG2",
    "PRAGUELCG2",
    "SIGNET",
    "WUPPERTALPROD",
    "GOEGRID",
    "UNIBE-LHEP",
    "AUSTRALIA-ATLAS",
    "INFN-NAPOLI",
    "INFN-MILANO",
    "GRIF",
    "BEIJING-LCG2",
];

/// Options controlling preset generation.
#[derive(Debug, Clone)]
pub struct PresetOptions {
    /// Number of sites to generate.
    pub site_count: usize,
    /// RNG seed (site capacities, speeds and latencies are sampled).
    pub seed: u64,
    /// Minimum cores for Tier-2 sites.
    pub min_cores: u32,
    /// Maximum cores for Tier-2 sites.
    pub max_cores: u32,
    /// Mean nominal per-core speed in HS23-like units.
    pub mean_speed: f64,
    /// Fractional speed heterogeneity across sites (0.3 = ±30 %).
    pub speed_spread: f64,
}

impl Default for PresetOptions {
    fn default() -> Self {
        PresetOptions {
            site_count: 50,
            seed: 0xC6_51_15,
            min_cores: 100,
            max_cores: 2_000,
            mean_speed: 10.0,
            speed_spread: 0.3,
        }
    }
}

/// Generates a WLCG-like platform with `site_count` sites (see module docs).
pub fn wlcg_platform(site_count: usize, seed: u64) -> PlatformSpec {
    wlcg_platform_with(PresetOptions {
        site_count,
        seed,
        ..PresetOptions::default()
    })
}

/// Generates a WLCG-like platform with full control over the options.
pub fn wlcg_platform_with(options: PresetOptions) -> PlatformSpec {
    assert!(options.site_count > 0, "need at least one site");
    let mut rng = Rng::new(options.seed);
    let mut spec = PlatformSpec::new(format!("wlcg-{}-sites", options.site_count));

    for i in 0..options.site_count {
        let name = match ATLAS_SITE_NAMES.get(i) {
            Some(known) => known.to_string(),
            None => format!("SITE-{i:03}"),
        };
        let tier = if i == 0 {
            Tier::Tier0
        } else if i % 5 == 1 {
            Tier::Tier1
        } else {
            Tier::Tier2
        };
        let cores = match tier {
            Tier::Tier0 => 4_000 + rng.index(4_000) as u32,
            Tier::Tier1 => 1_000 + rng.index(2_000) as u32,
            _ => {
                options.min_cores
                    + rng.index((options.max_cores - options.min_cores).max(1) as usize) as u32
            }
        };
        let speed = options.mean_speed
            * (1.0 + options.speed_spread * (2.0 * rng.uniform() - 1.0)).max(0.1);
        let storage_tb = match tier {
            Tier::Tier0 => 80_000.0,
            Tier::Tier1 => 20_000.0 + rng.uniform() * 20_000.0,
            _ => 1_000.0 + rng.uniform() * 5_000.0,
        };
        let mut site = SiteSpec::uniform(&name, tier, cores, speed);
        site.country = synth_country(i);
        site.storage_tb = storage_tb;
        site.internal_bandwidth_gbps = match tier {
            Tier::Tier0 => 400.0,
            Tier::Tier1 => 200.0,
            _ => 100.0,
        };
        spec.sites.push(site);

        // WAN uplink to the main server.
        let (bandwidth, base_latency) = match tier {
            Tier::Tier0 => (200.0, 2.0),
            Tier::Tier1 => (100.0, 10.0),
            _ => (20.0, 20.0),
        };
        let latency = base_latency + rng.uniform() * 80.0;
        spec.network
            .links
            .push(LinkSpec::new(&name, MAIN_SERVER, bandwidth, latency));
    }

    // A few direct Tier-0 <-> Tier-1 backbone links (LHCOPN-like).
    let t1_names: Vec<String> = spec
        .sites
        .iter()
        .filter(|s| s.tier == Tier::Tier1)
        .map(|s| s.name.clone())
        .collect();
    if let Some(t0) = spec.sites.first().map(|s| s.name.clone()) {
        for t1 in &t1_names {
            spec.network.links.push(LinkSpec::new(
                t0.clone(),
                t1.clone(),
                100.0,
                5.0 + rng.uniform() * 40.0,
            ));
        }
    }
    spec
}

fn synth_country(i: usize) -> String {
    const COUNTRIES: &[&str] = &[
        "CH", "US", "CA", "DE", "FR", "UK", "IT", "ES", "SE", "NL", "DE", "DE", "US", "US", "US",
        "US", "US", "UK", "ES", "JP", "CZ", "SI", "DE", "DE", "CH", "AU", "IT", "IT", "FR", "CN",
    ];
    COUNTRIES[i % COUNTRIES.len()].to_string()
}

/// A small 4-site example platform used by the quickstart example and tests.
/// The sites reuse the names from the paper's Table 1.
pub fn example_platform() -> PlatformSpec {
    PlatformSpec::new("example")
        .with_site({
            let mut s = SiteSpec::uniform("CERN", Tier::Tier0, 2_000, 12.0);
            s.country = "CH".into();
            s
        })
        .with_site({
            let mut s = SiteSpec::uniform("BNL", Tier::Tier1, 1_200, 10.0);
            s.country = "US".into();
            s
        })
        .with_site({
            let mut s = SiteSpec::uniform("DESY-ZN", Tier::Tier2, 600, 9.0);
            s.country = "DE".into();
            s
        })
        .with_site({
            let mut s = SiteSpec::uniform("LRZ-LMU", Tier::Tier2, 400, 8.0);
            s.country = "DE".into();
            s
        })
        .with_link(LinkSpec::new("CERN", MAIN_SERVER, 200.0, 2.0))
        .with_link(LinkSpec::new("BNL", MAIN_SERVER, 100.0, 45.0))
        .with_link(LinkSpec::new("DESY-ZN", MAIN_SERVER, 40.0, 12.0))
        .with_link(LinkSpec::new("LRZ-LMU", MAIN_SERVER, 20.0, 15.0))
        .with_link(LinkSpec::new("CERN", "BNL", 100.0, 45.0))
}

/// A degenerate single-site platform, used by the job-scaling experiment
/// (Fig. 4a) and by unit tests.
pub fn single_site_platform(cores: u32, speed: f64) -> PlatformSpec {
    PlatformSpec::new("single-site")
        .with_site(SiteSpec::uniform("SOLO", Tier::Tier2, cores, speed))
        .with_link(LinkSpec::new("SOLO", MAIN_SERVER, 100.0, 10.0))
}

/// Builds host specs for a heterogeneous site (utility for tests/examples
/// that need more than one worker-node group per site).
pub fn heterogeneous_site(name: &str, tier: Tier, groups: &[(u32, f64)]) -> SiteSpec {
    let mut site = SiteSpec::uniform(name, tier, 1, 1.0);
    site.hosts = groups
        .iter()
        .enumerate()
        .map(|(i, &(cores, speed))| HostSpec::new(format!("{name}-wn{i}"), cores, speed))
        .collect();
    site
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    #[test]
    fn wlcg_platform_is_buildable_at_paper_scale() {
        for &n in &[1usize, 10, 50] {
            let spec = wlcg_platform(n, 42);
            assert_eq!(spec.sites.len(), n);
            spec.validate().unwrap();
            let platform = Platform::build(&spec).unwrap();
            assert_eq!(platform.site_count(), n);
        }
    }

    #[test]
    fn wlcg_platform_is_deterministic_in_seed() {
        let a = wlcg_platform(20, 7);
        let b = wlcg_platform(20, 7);
        let c = wlcg_platform(20, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn core_counts_follow_paper_ranges() {
        let spec = wlcg_platform(50, 3);
        for site in &spec.sites {
            if site.tier == Tier::Tier2 {
                let cores = site.total_cores();
                assert!((100..=2_100).contains(&cores), "cores={cores}");
            }
        }
        // Tier-0 exists and is the largest class.
        assert_eq!(spec.sites[0].tier, Tier::Tier0);
        assert!(spec.sites[0].total_cores() >= 4_000);
    }

    #[test]
    fn first_sites_reuse_atlas_names() {
        let spec = wlcg_platform(5, 1);
        let names: Vec<_> = spec.sites.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["CERN", "BNL", "TRIUMF", "FZK-LCG2", "IN2P3-CC"]);
    }

    #[test]
    fn example_platform_builds() {
        let spec = example_platform();
        spec.validate().unwrap();
        let platform = Platform::build(&spec).unwrap();
        assert_eq!(platform.site_count(), 4);
        assert!(platform.site_by_name("DESY-ZN").is_some());
    }

    #[test]
    fn single_site_platform_builds() {
        let spec = single_site_platform(500, 10.0);
        let platform = Platform::build(&spec).unwrap();
        assert_eq!(platform.site_count(), 1);
        assert_eq!(platform.total_cores(), 500);
    }

    #[test]
    fn heterogeneous_site_has_multiple_host_groups() {
        let site = heterogeneous_site("HET", Tier::Tier2, &[(100, 8.0), (200, 12.0)]);
        assert_eq!(site.hosts.len(), 2);
        assert_eq!(site.total_cores(), 300);
        let spec = PlatformSpec::new("het").with_site(site);
        Platform::build(&spec).unwrap();
    }

    #[test]
    fn speeds_are_heterogeneous_but_positive() {
        let spec = wlcg_platform(50, 11);
        let speeds: Vec<f64> = spec
            .sites
            .iter()
            .map(|s| s.hosts[0].speed_per_core)
            .collect();
        assert!(speeds.iter().all(|&s| s > 0.0));
        let min = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = speeds.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max / min > 1.2, "expected heterogeneity, got {min}..{max}");
    }
}
