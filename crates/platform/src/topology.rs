//! Network topology graph and shortest-path routing.
//!
//! The platform's WAN is an undirected graph whose nodes are the computing
//! sites plus the central main server, and whose edges are the configured
//! links. Routing between two nodes follows the lowest-latency path
//! (Dijkstra), which mirrors how SimGrid resolves netzone-to-netzone routes
//! from the platform description.

use serde::{Deserialize, Serialize};

/// Properties of a network edge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeProps {
    /// One-way latency in seconds.
    pub latency_s: f64,
    /// Bandwidth in bytes per second.
    pub bandwidth_bps: f64,
}

/// An undirected weighted graph with stable node and edge indices.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adjacency: Vec<Vec<(usize, usize)>>,
    edges: Vec<(usize, usize, EdgeProps)>,
}

/// A path through the graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Edge indices along the path, in traversal order.
    pub edges: Vec<usize>,
    /// Sum of edge latencies.
    pub latency_s: f64,
    /// Minimum bandwidth along the path (the nominal bottleneck).
    pub min_bandwidth_bps: f64,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds a node and returns its index.
    pub fn add_node(&mut self) -> usize {
        self.adjacency.push(Vec::new());
        self.adjacency.len() - 1
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge between `a` and `b` and returns its index.
    pub fn add_edge(&mut self, a: usize, b: usize, props: EdgeProps) -> usize {
        assert!(a < self.adjacency.len() && b < self.adjacency.len());
        let idx = self.edges.len();
        self.edges.push((a, b, props));
        self.adjacency[a].push((b, idx));
        self.adjacency[b].push((a, idx));
        idx
    }

    /// Properties of edge `idx`.
    pub fn edge(&self, idx: usize) -> EdgeProps {
        self.edges[idx].2
    }

    /// Lowest-latency path from `from` to `to` (Dijkstra). Returns `None`
    /// when the nodes are disconnected. A path from a node to itself is the
    /// empty path.
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<Path> {
        if from == to {
            return Some(Path {
                edges: Vec::new(),
                latency_s: 0.0,
                min_bandwidth_bps: f64::INFINITY,
            });
        }
        let n = self.adjacency.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; n];
        let mut visited = vec![false; n];
        dist[from] = 0.0;

        // Simple O(V^2) Dijkstra: platform graphs have at most a few hundred
        // nodes, so this is never the bottleneck.
        for _ in 0..n {
            let mut u = None;
            let mut best = f64::INFINITY;
            for (i, &d) in dist.iter().enumerate() {
                if !visited[i] && d < best {
                    best = d;
                    u = Some(i);
                }
            }
            let Some(u) = u else { break };
            if u == to {
                break;
            }
            visited[u] = true;
            for &(v, edge_idx) in &self.adjacency[u] {
                let weight = self.edges[edge_idx].2.latency_s.max(0.0) + 1e-9;
                if dist[u] + weight < dist[v] {
                    dist[v] = dist[u] + weight;
                    prev[v] = Some((u, edge_idx));
                }
            }
        }

        if dist[to].is_infinite() {
            return None;
        }
        let mut edges = Vec::new();
        let mut latency = 0.0;
        let mut min_bw = f64::INFINITY;
        let mut cursor = to;
        while cursor != from {
            let (parent, edge_idx) = prev[cursor]?;
            edges.push(edge_idx);
            let props = self.edges[edge_idx].2;
            latency += props.latency_s;
            min_bw = min_bw.min(props.bandwidth_bps);
            cursor = parent;
        }
        edges.reverse();
        Some(Path {
            edges,
            latency_s: latency,
            min_bandwidth_bps: min_bw,
        })
    }

    /// True if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        let n = self.adjacency.len();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &(v, _) in &self.adjacency[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn props(latency_ms: f64, bw: f64) -> EdgeProps {
        EdgeProps {
            latency_s: latency_ms / 1000.0,
            bandwidth_bps: bw,
        }
    }

    #[test]
    fn empty_and_trivial_paths() {
        let mut g = Graph::new();
        let a = g.add_node();
        let path = g.shortest_path(a, a).unwrap();
        assert!(path.edges.is_empty());
        assert_eq!(path.latency_s, 0.0);
    }

    #[test]
    fn straight_line_routing() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let e1 = g.add_edge(a, b, props(10.0, 100.0));
        let e2 = g.add_edge(b, c, props(20.0, 50.0));
        let path = g.shortest_path(a, c).unwrap();
        assert_eq!(path.edges, vec![e1, e2]);
        assert!((path.latency_s - 0.03).abs() < 1e-12);
        assert_eq!(path.min_bandwidth_bps, 50.0);
    }

    #[test]
    fn picks_lower_latency_route() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let hub = g.add_node();
        // Direct slow link vs two-hop fast path.
        g.add_edge(a, b, props(100.0, 10.0));
        let e_fast1 = g.add_edge(a, hub, props(5.0, 1000.0));
        let e_fast2 = g.add_edge(hub, b, props(5.0, 1000.0));
        let path = g.shortest_path(a, b).unwrap();
        assert_eq!(path.edges, vec![e_fast1, e_fast2]);
    }

    #[test]
    fn disconnected_nodes_have_no_path() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        assert!(g.shortest_path(a, b).is_none());
        assert!(!g.is_connected());
    }

    #[test]
    fn star_topology_is_connected() {
        let mut g = Graph::new();
        let hub = g.add_node();
        let leaves: Vec<_> = (0..10).map(|_| g.add_node()).collect();
        for &leaf in &leaves {
            g.add_edge(hub, leaf, props(10.0, 1e9));
        }
        assert!(g.is_connected());
        let path = g.shortest_path(leaves[0], leaves[9]).unwrap();
        assert_eq!(path.edges.len(), 2);
    }

    #[test]
    fn zero_latency_edges_are_usable() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, props(0.0, 1e9));
        let path = g.shortest_path(a, b).unwrap();
        assert_eq!(path.edges.len(), 1);
    }
}
