//! Property-based tests for platform construction and routing.

use cgsim_platform::spec::{LinkSpec, PlatformSpec, SiteSpec, Tier, MAIN_SERVER};
use cgsim_platform::{NodeId, Platform};
use proptest::prelude::*;

/// Strategy: a platform with 1..=12 sites, random core counts/speeds, and a
/// star topology with random link parameters.
fn arb_platform() -> impl Strategy<Value = PlatformSpec> {
    prop::collection::vec(
        (1u32..4000, 1.0f64..30.0, 0.1f64..200.0, 0.1f64..200.0),
        1..12,
    )
    .prop_map(|sites| {
        let mut spec = PlatformSpec::new("prop");
        for (i, (cores, speed, bw, latency)) in sites.into_iter().enumerate() {
            let name = format!("S{i}");
            let tier = match i % 3 {
                0 => Tier::Tier1,
                1 => Tier::Tier2,
                _ => Tier::Tier3,
            };
            spec.sites
                .push(SiteSpec::uniform(&name, tier, cores, speed));
            spec.network
                .links
                .push(LinkSpec::new(name, MAIN_SERVER, bw, latency));
        }
        spec
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every randomly generated star platform validates, builds, and routes
    /// between every pair of endpoints.
    #[test]
    fn star_platforms_always_build_and_route(spec in arb_platform()) {
        spec.validate().expect("spec validates");
        let platform = Platform::build(&spec).expect("platform builds");
        prop_assert_eq!(platform.site_count(), spec.sites.len());
        prop_assert_eq!(platform.total_cores(), spec.total_cores());

        let nodes: Vec<NodeId> = std::iter::once(NodeId::MainServer)
            .chain(platform.sites().iter().map(|s| NodeId::Site(s.id)))
            .collect();
        for &a in &nodes {
            for &b in &nodes {
                let route = platform.route(a, b);
                if a == b {
                    prop_assert!(route.links.is_empty());
                } else {
                    prop_assert!(!route.links.is_empty());
                    prop_assert!(route.latency_s > 0.0);
                    prop_assert!(route.bottleneck_bps > 0.0);
                    prop_assert!(route.bottleneck_bps.is_finite());
                    // Symmetric topology: reverse route has the same latency.
                    let back = platform.route(b, a);
                    prop_assert!((route.latency_s - back.latency_s).abs() < 1e-9);
                }
            }
        }
    }

    /// JSON round-trips preserve the specification exactly.
    #[test]
    fn spec_json_roundtrip(spec in arb_platform()) {
        let json = spec.to_json().expect("serialises");
        let back = PlatformSpec::from_json(&json).expect("parses");
        prop_assert_eq!(spec, back);
    }

    /// Effective speed scales linearly with the calibration multiplier.
    #[test]
    fn effective_speed_scales_with_multiplier(
        spec in arb_platform(),
        multiplier in 0.01f64..10.0,
    ) {
        let mut platform = Platform::build(&spec).expect("platform builds");
        let site = platform.sites()[0].id;
        let base = platform.effective_speed(site);
        platform.set_speed_multiplier(site, multiplier);
        let scaled = platform.effective_speed(site);
        prop_assert!((scaled - base * multiplier).abs() <= 1e-9 * base.max(1.0) * multiplier.max(1.0));
    }
}
