//! ML dataset generation (paper §1 / §4.3.2): run simulations, flatten the
//! event-level dataset into supervised-learning examples, and fit a trivial
//! baseline model (linear regression on queue time) to show the dataset is
//! directly consumable — the paper's motivation is training AI surrogates for
//! performance prediction.
//!
//! Dataset generation is exactly the workload the [`ScenarioEngine`] is
//! built for: one `Arc`-shared base (platform + trace held once), a batch of
//! seed deltas evaluated over the worker pool, and memoised results so
//! regenerating the dataset after a post-processing tweak costs nothing.
//!
//! ```bash
//! cargo run --release --example ml_dataset
//! ```

use cgsim::core::ScenarioSpec;
use cgsim::des::stats::linear_fit;
use cgsim::monitor::mldataset;
use cgsim::prelude::*;

fn main() {
    let platform = wlcg_platform(12, 5);
    let trace = TraceGenerator::new(TraceConfig::with_jobs(2_000, 17)).generate(&platform);
    let base = ScenarioBase::shared(platform, trace);
    let engine = ScenarioEngine::new();

    // One batch of seed replicas: same grid, same jobs, different stochastic
    // draws — the standard way to widen a training set without new traces.
    let specs: Vec<ScenarioSpec> = [17u64, 18, 19]
        .iter()
        .map(|&seed| {
            let execution = ExecutionConfig {
                seed,
                ..ExecutionConfig::default()
            };
            ScenarioSpec::new(base.clone(), execution)
        })
        .collect();
    let mut examples = Vec::new();
    let mut event_rows = 0usize;
    for outcome in engine.evaluate_batch(&specs) {
        let results = outcome.expect("simulation runs").results;
        examples.extend(mldataset::build_examples(
            &results.outcomes,
            &results.events,
        ));
        event_rows += results.events.len();
    }
    println!(
        "generated {} training examples from {} event rows ({} simulations, one shared base)",
        examples.len(),
        event_rows,
        engine.simulations_run()
    );

    // Persist the dataset (CSV, one row per job).
    let path = std::env::temp_dir().join("cgsim-ml-dataset.csv");
    std::fs::write(&path, mldataset::to_csv(&examples)).expect("dataset written");
    println!("dataset written to {}", path.display());

    // A deliberately simple surrogate: queue time predicted from the site
    // queue depth observed at assignment. Real users would train an actual
    // model on the CSV; this just demonstrates the dataset is well-formed.
    let xs: Vec<f64> = examples.iter().map(|e| e.site_queue_at_assign).collect();
    let ys: Vec<f64> = examples.iter().map(|e| e.target_queue_time).collect();
    if xs.iter().any(|&x| x > 0.0) {
        let (intercept, slope) = linear_fit(&xs, &ys);
        println!(
            "baseline surrogate: queue_time ≈ {intercept:.1} + {slope:.1} * queue_depth_at_assign"
        );
    } else {
        println!("grid was never congested in this run; queue-time surrogate is trivial (≈0)");
    }

    // Dataset sanity summary.
    let mean_walltime: f64 =
        examples.iter().map(|e| e.target_walltime).sum::<f64>() / examples.len() as f64;
    let multicore = examples.iter().filter(|e| e.is_multicore > 0.5).count();
    println!(
        "targets: mean walltime {:.0}s; features: {} multi-core examples, {} single-core",
        mean_walltime,
        multicore,
        examples.len() - multicore
    );
}
