//! ML dataset generation (paper §1 / §4.3.2): run a simulation, flatten the
//! event-level dataset into supervised-learning examples, and fit a trivial
//! baseline model (linear regression on queue time) to show the dataset is
//! directly consumable — the paper's motivation is training AI surrogates for
//! performance prediction.
//!
//! ```bash
//! cargo run --release --example ml_dataset
//! ```

use cgsim::des::stats::linear_fit;
use cgsim::monitor::mldataset;
use cgsim::prelude::*;

fn main() {
    let platform = wlcg_platform(12, 5);
    let trace = TraceGenerator::new(TraceConfig::with_jobs(2_000, 17)).generate(&platform);
    let results = Simulation::builder()
        .platform_spec(&platform)
        .expect("platform is valid")
        .trace(trace)
        .policy_name("least-loaded")
        .execution(ExecutionConfig::default())
        .run()
        .expect("simulation runs");

    let examples = mldataset::build_examples(&results.outcomes, &results.events);
    println!(
        "generated {} training examples from {} event rows",
        examples.len(),
        results.events.len()
    );

    // Persist the dataset (CSV, one row per job).
    let path = std::env::temp_dir().join("cgsim-ml-dataset.csv");
    std::fs::write(&path, mldataset::to_csv(&examples)).expect("dataset written");
    println!("dataset written to {}", path.display());

    // A deliberately simple surrogate: queue time predicted from the site
    // queue depth observed at assignment. Real users would train an actual
    // model on the CSV; this just demonstrates the dataset is well-formed.
    let xs: Vec<f64> = examples.iter().map(|e| e.site_queue_at_assign).collect();
    let ys: Vec<f64> = examples.iter().map(|e| e.target_queue_time).collect();
    if xs.iter().any(|&x| x > 0.0) {
        let (intercept, slope) = linear_fit(&xs, &ys);
        println!(
            "baseline surrogate: queue_time ≈ {intercept:.1} + {slope:.1} * queue_depth_at_assign"
        );
    } else {
        println!("grid was never congested in this run; queue-time surrogate is trivial (≈0)");
    }

    // Dataset sanity summary.
    let mean_walltime: f64 =
        examples.iter().map(|e| e.target_walltime).sum::<f64>() / examples.len() as f64;
    let multicore = examples.iter().filter(|e| e.is_multicore > 0.5).count();
    println!(
        "targets: mean walltime {:.0}s; features: {} multi-core examples, {} single-core",
        mean_walltime,
        multicore,
        examples.len() - multicore
    );
}
