//! Writing a scheduling plugin (paper §3.3): implement the `AllocationPolicy`
//! trait, register it under a name, select it from the execution
//! configuration, and compare it against the built-in policies — all without
//! touching the simulator core.
//!
//! The example policy is a *tier-aware backfill*: multi-core production jobs
//! go to the largest Tier-0/1 sites, single-core analysis jobs backfill the
//! Tier-2 sites with the most free cores.
//!
//! ```bash
//! cargo run --release --example custom_policy
//! ```

use cgsim::platform::Tier;
use cgsim::prelude::*;

/// The user-written plugin.
struct TierAwareBackfill {
    info: GridInfo,
}

impl TierAwareBackfill {
    fn new() -> Self {
        TierAwareBackfill {
            info: GridInfo::default(),
        }
    }
}

impl AllocationPolicy for TierAwareBackfill {
    fn name(&self) -> &str {
        "tier-aware-backfill"
    }

    // The paper's getResourceInformation hook: capture the static topology.
    fn get_resource_information(&mut self, info: &GridInfo) {
        self.info = info.clone();
    }

    // The paper's assignJob hook: the actual placement decision.
    fn assign_job(&mut self, job: &JobRecord, view: &GridView) -> Option<cgsim::platform::SiteId> {
        let is_production = job.kind == JobKind::MultiCore;
        let candidates = view.sites.iter().filter(|load| {
            let tier = self.info.sites[load.site.index()].tier;
            let tier_matches = if is_production {
                matches!(tier, Tier::Tier0 | Tier::Tier1)
            } else {
                matches!(tier, Tier::Tier2 | Tier::Tier3)
            };
            tier_matches && load.available_cores >= job.cores as u64
        });
        candidates
            .max_by_key(|load| load.available_cores)
            .map(|load| load.site)
            // Fall back to any site with room, then to the least-queued site.
            .or_else(|| {
                view.sites_with_free_cores(job.cores as u64)
                    .max_by_key(|l| l.available_cores)
                    .map(|l| l.site)
            })
            .or_else(|| {
                view.sites
                    .iter()
                    .min_by_key(|l| l.queued_jobs)
                    .map(|l| l.site)
            })
    }
}

fn run_policy(
    platform: &PlatformSpec,
    trace: &Trace,
    registry: PolicyRegistry,
    name: &str,
) -> SimulationResults {
    Simulation::builder()
        .platform_spec(platform)
        .expect("platform is valid")
        .trace(trace.clone())
        .registry(registry)
        .policy_name(name)
        .execution(ExecutionConfig::with_policy(name))
        .run()
        .expect("simulation runs")
}

fn main() {
    let platform = wlcg_platform(20, 99);
    let trace = TraceGenerator::new(TraceConfig::with_jobs(2_000, 3)).generate(&platform);

    println!(
        "{:<22} {:>12} {:>14} {:>14} {:>12}",
        "policy", "makespan_h", "mean_queue_s", "p95_queue_s", "failures"
    );
    for name in [
        "tier-aware-backfill",
        "least-loaded",
        "round-robin",
        "random",
    ] {
        // Register the plugin under a configuration-visible name (the moral
        // equivalent of dropping a shared library next to the simulator).
        let mut reg = PolicyRegistry::with_builtins();
        reg.register(
            "tier-aware-backfill",
            |_| Box::new(TierAwareBackfill::new()),
        );
        let results = run_policy(&platform, &trace, reg, name);
        let queue = results.metrics.queue_time.as_ref();
        println!(
            "{:<22} {:>12.2} {:>14.1} {:>14.1} {:>12}",
            name,
            results.metrics.makespan_s / 3600.0,
            queue.map(|s| s.mean).unwrap_or(0.0),
            queue.map(|s| s.p95).unwrap_or(0.0),
            results.metrics.failed_jobs
        );
    }
    println!("\nA lower makespan / queue time for the plugin shows the policy is actually");
    println!("driving placement; swapping policies never required changes to cgsim-core.");
}
