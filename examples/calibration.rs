//! Calibration walkthrough (paper §4.2 / Fig. 3): start from nominal
//! HEPScore-like site speeds, measure the walltime error against the
//! historical trace, calibrate each site's speed with random search, and
//! validate on held-out jobs.
//!
//! ```bash
//! cargo run --release --example calibration
//! ```

use cgsim::prelude::*;

fn main() {
    // A 10-site slice of the WLCG-like platform keeps the example fast; the
    // fig3_calibration binary runs the full 50-site version.
    let platform = wlcg_platform(10, 7);
    let mut cfg = TraceConfig::with_jobs(1_200, 11);
    cfg.mean_file_bytes = 1e8;
    let trace = TraceGenerator::new(cfg).generate(&platform);

    // Calibrate on 60% of the history, validate on the remaining 40%.
    let (calibration_trace, validation_trace) = trace.split(0.6);
    println!(
        "calibration jobs: {}, validation jobs: {}",
        calibration_trace.len(),
        validation_trace.len()
    );

    let calibrator = Calibrator {
        optimizer: OptimizerKind::Random,
        budget_per_site: 25,
        ..Calibrator::default()
    };
    let report = calibrator.calibrate(&platform, &calibration_trace);

    println!(
        "\n{:<16} {:>8} {:>14} {:>14} {:>12}",
        "site", "jobs", "before_%", "after_%", "multiplier"
    );
    for cal in &report.sites {
        println!(
            "{:<16} {:>8} {:>14.1} {:>14.1} {:>12.3}",
            cal.site,
            cal.jobs,
            cal.nominal_error * 100.0,
            cal.calibrated_error * 100.0,
            cal.best_multiplier
        );
    }
    println!(
        "\ngeometric mean error: {:.1}% -> {:.1}% ({:.1}x improvement)",
        report.geometric_mean_before * 100.0,
        report.geometric_mean_after * 100.0,
        report.improvement_factor()
    );

    // Validation: replay the held-out jobs through the calibrated platform.
    let mut execution = ExecutionConfig::with_policy("historical-panda");
    execution.monitoring = MonitoringConfig::disabled();
    let validation = Simulation::builder()
        .platform_spec(&report.calibrated_spec)
        .expect("calibrated spec is valid")
        .trace(validation_trace)
        .execution(execution)
        .run()
        .expect("validation run succeeds");
    if let Some(err) = validation.geometric_mean_walltime_error() {
        println!(
            "held-out validation error with calibrated speeds: {:.1}%",
            err * 100.0
        );
    }

    // Sensitivity analysis: which parameter matters (paper: CPU speed).
    let sensitivity = SensitivityStudy::default().run(&platform, &calibration_trace);
    println!("\nparameter sensitivity (error spread across a 0.5x-2x scale range):");
    for p in &sensitivity.parameters {
        println!("  {:<20} impact {:.3}", p.parameter.label(), p.impact);
    }
    println!("dominant parameter: {}", sensitivity.dominant().label());
}
