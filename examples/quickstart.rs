//! Quickstart: build a small grid, generate a PanDA-like workload, run the
//! simulation and print the operational metrics and the final dashboard.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use cgsim::prelude::*;

fn main() {
    // 1. The platform: four ATLAS-named sites behind a central main server
    //    (the paper's example topology; see `examples/atlas_grid.rs` for the
    //    full 50-site WLCG-like configuration).
    let platform = example_platform();
    println!(
        "platform '{}': {} sites, {} cores total",
        platform.name,
        platform.sites.len(),
        platform.total_cores()
    );

    // 2. The workload: 500 synthetic PanDA-like jobs (60% single-core
    //    analysis, 40% 8-core production) submitted over six hours.
    let trace = TraceGenerator::new(TraceConfig::with_jobs(500, 42)).generate(&platform);
    let summary = trace.summary();
    println!(
        "trace: {} jobs ({} multi-core) across {} sites, mean work {:.0} HS23-s",
        summary.job_count, summary.multicore_jobs, summary.site_count, summary.work.mean
    );

    // 3. Run with the least-loaded allocation policy.
    let results = Simulation::builder()
        .platform_spec(&platform)
        .expect("platform is valid")
        .trace(trace)
        .policy_name("least-loaded")
        .execution(ExecutionConfig::default())
        .run()
        .expect("simulation runs");

    println!("\n=== metrics ===\n{}", results.metrics.text_summary());
    println!(
        "simulator wall-clock: {:.3} s for {} discrete events",
        results.wall_clock_s, results.engine_events
    );

    println!("\n=== final dashboard ===\n{}", results.ascii_dashboard());

    // 4. Export the run like the paper's output layer would (CSV tables).
    let out_dir = std::env::temp_dir().join("cgsim-quickstart");
    results
        .to_table_store()
        .save_csv_dir(&out_dir)
        .expect("CSV export succeeds");
    println!("CSV tables written to {}", out_dir.display());
}
