//! Policy study: the core use case CGSim is built for — evaluate scheduling
//! and data-movement strategies on a realistic grid *before* deploying them
//! on production infrastructure (paper §1, §3.3).
//!
//! The example compares every built-in allocation policy (including the
//! advanced cost-model and fair-share strategies) on the same platform and
//! workload, then shows the effect of the data-movement policy (cache
//! admission) and the queue-time model. All ablations run through one
//! [`ScenarioEngine`] over one `Arc`-shared [`ScenarioBase`]: the platform
//! and the 3000-job trace are held once, each variant is just an execution
//! delta, and repeated variants are answered from the response cache.
//!
//! ```bash
//! cargo run --release --example policy_comparison
//! ```

use cgsim::core::ScenarioSpec;
use cgsim::prelude::*;

fn main() {
    let platform = wlcg_platform(15, 9);
    let trace = TraceGenerator::new(TraceConfig::with_jobs(3_000, 21)).generate(&platform);
    let registry = PolicyRegistry::with_builtins();

    // 1. Allocation-policy comparison under identical conditions
    //    (compare_policies itself batches through a scenario engine).
    let policies = [
        "least-loaded",
        "round-robin",
        "random",
        "fastest-available",
        "data-aware",
        "shortest-expected-wait",
        "weighted-fair-share",
        "greedy-cost",
        "capacity-proportional",
        "historical-panda",
    ];
    let report = compare_policies(
        &platform,
        &trace,
        &policies,
        &ExecutionConfig::default(),
        &registry,
    )
    .expect("all policies are registered");
    println!(
        "# Allocation policies ({} jobs, {} sites)\n",
        trace.len(),
        15
    );
    println!("{}", report.to_csv());
    let best = report.best_by_makespan().expect("non-empty comparison");
    println!(
        "best makespan: {} ({:.1} h); best mean queue time: {}",
        best.policy,
        best.makespan_s / 3600.0,
        report.best_by_queue_time().expect("non-empty").policy
    );

    // One shared base for every ablation below: the platform and trace are
    // content-hashed once, never cloned per run.
    let engine = ScenarioEngine::with_registry(registry);
    let base = ScenarioBase::shared(platform, trace);

    // 2. Data-movement ablation: cache admission policies change WAN traffic.
    println!("\n# Data-movement policies (staged bytes over the WAN)\n");
    let data_specs: Vec<ScenarioSpec> = [
        "default-data-movement",
        "never-cache",
        "size-threshold-cache",
    ]
    .iter()
    .map(|&data_policy| {
        let mut execution = ExecutionConfig::with_policy("least-loaded");
        execution.data_movement_policy = data_policy.to_string();
        ScenarioSpec::new(base.clone(), execution)
    })
    .collect();
    for (outcome, spec) in engine
        .evaluate_batch(&data_specs)
        .into_iter()
        .zip(&data_specs)
    {
        let results = outcome.expect("simulation runs").results;
        println!(
            "{:<24} staged {:>8.1} GB, makespan {:>6.1} h",
            spec.execution.data_movement_policy,
            results.metrics.staged_bytes as f64 / 1e9,
            results.metrics.makespan_s / 3600.0
        );
    }

    // 3. Queue-time model: scheduling overhead shifts the queue-time metric.
    println!("\n# Queue-time model (scheduling overhead, paper §4.2)\n");
    for overhead_s in [0.0, 120.0, 600.0] {
        let mut execution = ExecutionConfig::with_policy("least-loaded");
        execution.queue_model = QueueModel::constant(overhead_s);
        let outcome = engine
            .evaluate(&ScenarioSpec::new(base.clone(), execution))
            .expect("simulation runs");
        println!(
            "overhead {:>5.0} s -> mean queue time {:>7.1} s, makespan {:>6.1} h",
            overhead_s,
            outcome
                .results
                .metrics
                .queue_time
                .as_ref()
                .map(|s| s.mean)
                .unwrap_or(0.0),
            outcome.results.metrics.makespan_s / 3600.0
        );
    }

    let counters = engine.cache_counters();
    println!(
        "\nengine: {} simulations run, cache {} hits / {} misses ({} entries)",
        engine.simulations_run(),
        counters.hits,
        counters.misses,
        counters.entries
    );
}
