//! Availability study: replication factor × checkpoint interval × async
//! writes under correlated incidents.
//!
//! The self-healing data layer has three independent levers — how many
//! replicas the repair planner maintains (`repair.target_factor`), how often
//! jobs checkpoint (`checkpoint.interval_s`), and whether checkpoint writes
//! overlap execution (`checkpoint.overlap`). This example sweeps the full
//! grid of the three under one deterministic schedule of *correlated*
//! incidents (multi-site outages plus disk losses plus targeted kills — the
//! worst case for data durability, because simultaneous failures defeat
//! single-copy redundancy) and emits a CSV of makespan vs work lost vs
//! repair traffic, so the trade-off surface can be plotted directly.
//!
//! ```bash
//! cargo run --release --example availability_study
//! ```

use cgsim::platform::spec::MAIN_SERVER;
use cgsim::platform::{LinkSpec, SiteSpec, Tier};
use cgsim::prelude::*;
use cgsim::workload::{JobKind, JobRecord, TaskId};

/// Long single-core jobs, one task (and therefore one cached dataset) per
/// group of four jobs: enough distinct datasets that disk losses create real
/// replication deficits, enough sharing that caching matters.
fn grouped_trace(count: usize) -> Trace {
    let jobs = (0..count)
        .map(|i| {
            let mut record = JobRecord::new(i as u64, JobKind::SingleCore, 1, 3.0 * 3600.0 * 10.0);
            record.task_id = TaskId((i / 4) as u64);
            record.input_bytes = 3_000_000_000;
            record.output_bytes = 0;
            record
        })
        .collect();
    Trace {
        jobs,
        ..Trace::default()
    }
}

fn main() {
    let platform = PlatformSpec::new("availability-grid")
        .with_site(SiteSpec::uniform("Alpha", Tier::Tier1, 500, 10.0))
        .with_site(SiteSpec::uniform("Beta", Tier::Tier2, 350, 10.0))
        .with_site(SiteSpec::uniform("Gamma", Tier::Tier2, 250, 10.0))
        .with_link(LinkSpec::new("Alpha", MAIN_SERVER, 100.0, 10.0))
        .with_link(LinkSpec::new("Beta", MAIN_SERVER, 100.0, 20.0))
        .with_link(LinkSpec::new("Gamma", MAIN_SERVER, 50.0, 30.0));
    let trace = grouped_trace(800);

    // Correlated incidents: Alpha+Beta go down *together* every ~6 h (a
    // shared-infrastructure failure), individual disk losses wipe cached
    // replicas every ~4 h per site, and targeted kills add job-level churn.
    // One plan, shared by every sweep point.
    let fault_config = parse_fault_spec(
        "incident:sites=0+1,mttf=6h,mttr=25m;\
         diskloss:site=all,mttf=4h;\
         kill:rate=3;horizon=4d",
    )
    .expect("spec parses");
    let platform_built = Platform::build(&platform).expect("platform builds");
    let topology = FaultTopology::for_platform(&platform_built, trace.len());
    let plan = FaultPlan::generate(&fault_config, &topology, 13);
    eprintln!("fault plan: {} events over 96 h", plan.len());

    // The sweep grid. Replication factor 1 disables repair (one replica is
    // the no-redundancy baseline: nothing to re-establish).
    let replication_factors: [u32; 3] = [1, 2, 3];
    let intervals_min: [f64; 3] = [20.0, 60.0, 180.0];
    let async_modes: [bool; 2] = [false, true];

    println!(
        "replication_factor,checkpoint_interval_min,async_writes,makespan_h,\
         work_lost_h,work_saved_h,repair_gb,repairs_completed,ckpt_gb_shipped,\
         ckpt_stalls,interruptions,finished_jobs"
    );
    for &factor in &replication_factors {
        for &interval_min in &intervals_min {
            for &overlap in &async_modes {
                let execution = ExecutionConfig {
                    fault_max_retries: 50,
                    checkpoint: CheckpointConfig {
                        interval_s: interval_min * 60.0,
                        base_bytes: 4_000_000_000,
                        bytes_per_core: 0,
                        target: CheckpointTarget::MainServer,
                        overlap,
                        delta_bytes_per_s: 0,
                    },
                    repair: RepairConfig {
                        enabled: factor > 1,
                        target_factor: factor,
                        ..RepairConfig::default()
                    },
                    ..ExecutionConfig::default()
                };
                let results = Simulation::builder()
                    .platform_spec(&platform)
                    .expect("platform builds")
                    .trace(trace.clone())
                    .policy_name("least-loaded")
                    .execution(execution)
                    .fault_plan(plan.clone())
                    .run()
                    .expect("simulation runs");
                let g = &results.grid_counters;
                println!(
                    "{},{:.0},{},{:.3},{:.2},{:.2},{:.2},{},{:.2},{},{},{}",
                    factor,
                    interval_min,
                    overlap,
                    results.makespan_s / 3600.0,
                    g.work_lost_s / 3600.0,
                    g.work_saved_s / 3600.0,
                    g.repair_bytes as f64 / 1e9,
                    g.repairs_completed,
                    g.ckpt_bytes_shipped as f64 / 1e9,
                    g.ckpt_stalls,
                    g.job_interruptions,
                    results.metrics.finished_jobs,
                );
            }
        }
    }
}
