//! Parameter sweeps on worker threads: the shape of every scalability
//! experiment in the paper (Fig. 4) is "run many independent simulations and
//! plot a metric against a swept parameter". This example sweeps the number
//! of computing sites through a shared [`ScenarioEngine`], runs every point
//! in parallel, and prints the resulting table (the same data Fig. 4(b) is
//! drawn from). Because the engine memoises results in its deterministic
//! response cache, re-running the sweep — the usual "tweak the plot, rerun
//! the script" loop — answers every point from the cache.
//!
//! ```bash
//! cargo run --release --example parallel_sweep
//! ```

use cgsim::core::sweep::{run_sweep_on, sweep_csv, SweepPoint};
use cgsim::core::ScenarioEngine;
use cgsim::prelude::*;

fn main() {
    let jobs_per_site = 150;

    // Platform and trace move into the point once and are Arc-shared from
    // there: fanning a point out to worker threads never deep-clones them.
    let points: Vec<SweepPoint> = [1usize, 2, 5, 10, 20, 30]
        .iter()
        .map(|&sites| {
            let platform = wlcg_platform(sites, 7);
            let trace = TraceGenerator::new(TraceConfig::with_jobs(sites * jobs_per_site, 13))
                .generate(&platform);
            SweepPoint::new(
                format!("sites={sites}"),
                platform,
                trace,
                ExecutionConfig::default(),
            )
        })
        .collect();

    let engine = ScenarioEngine::new();
    let started = std::time::Instant::now();
    let outcomes = run_sweep_on(&engine, points.clone()).expect("sweep runs");
    println!(
        "ran {} simulations in {:.2?} across {} worker threads\n",
        outcomes.len(),
        started.elapsed(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    println!("{}", sweep_csv(&outcomes));

    // The multi-site scaling shape of Fig. 4(b): simulator work (engine
    // events) grows close to linearly with the number of sites.
    let xs: Vec<f64> = outcomes
        .iter()
        .map(|o| o.results.metrics.total_jobs as f64)
        .collect();
    let ys: Vec<f64> = outcomes
        .iter()
        .map(|o| o.results.engine_events as f64)
        .collect();
    let k = cgsim::des::stats::scaling_exponent(&xs, &ys);
    println!("engine-event scaling exponent vs workload size: {k:.2} (≈1 is linear)");

    // Second pass over the same sweep: every point is a cache hit, no
    // simulation reruns.
    let started = std::time::Instant::now();
    let again = run_sweep_on(&engine, points).expect("sweep replays");
    let counters = engine.cache_counters();
    println!(
        "\nreplayed {} points in {:.2?}: {} cache hits, {} simulations run in total",
        again.len(),
        started.elapsed(),
        counters.hits,
        engine.simulations_run()
    );
    assert_eq!(counters.hits as usize, again.len());
}
