//! Monitoring and visualisation (paper §4.3.3 / Fig. 5): run a congested
//! scenario and render the node-pressure dashboard both as ASCII (printed)
//! and as a self-contained HTML page (written next to the other outputs).
//!
//! ```bash
//! cargo run --release --example dashboard
//! ```

use cgsim::prelude::*;

fn main() {
    let platform = example_platform();
    // A bursty workload (everything submitted in the first half hour) keeps
    // the sites saturated so the dashboard shows real node pressure.
    let mut cfg = TraceConfig::with_jobs(1_500, 23);
    cfg.submission_window_s = 1_800.0;
    let trace = TraceGenerator::new(cfg).generate(&platform);

    // Stop the run mid-flight (virtual-time horizon) so the final snapshot
    // still has running and queued jobs, like a live dashboard would.
    let mut execution = ExecutionConfig::with_policy("least-loaded");
    execution.horizon_s = Some(3.0 * 3600.0);
    let results = Simulation::builder()
        .platform_spec(&platform)
        .expect("platform is valid")
        .trace(trace)
        .execution(execution)
        .run()
        .expect("simulation runs");

    println!("{}", results.ascii_dashboard());
    println!(
        "jobs finished so far: {} / queued or running: {}",
        results.metrics.finished_jobs,
        results
            .site_panels
            .iter()
            .map(|p| p.queued_jobs + p.running_jobs)
            .sum::<u64>()
    );

    let path = std::env::temp_dir().join("cgsim-dashboard.html");
    std::fs::write(&path, results.html_dashboard()).expect("dashboard written");
    println!(
        "HTML dashboard written to {} (open it in a browser)",
        path.display()
    );

    // The same data is available as raw event rows for post-processing.
    println!(
        "event-level records captured: {} (first event at t={:.1}s, last at t={:.1}s)",
        results.events.len(),
        results.events.first().map(|e| e.time_s).unwrap_or(0.0),
        results.events.last().map(|e| e.time_s).unwrap_or(0.0)
    );
}
