//! Fault injection: reliability scenarios the fair-weather simulator could
//! never express — a three-site grid with one flapping site, compared across
//! retry policies under the *same* deterministic fault schedule.
//!
//! The example shows the whole fault workflow:
//!
//! 1. describe the fault processes with the `--faults` spec grammar,
//! 2. generate a deterministic `FaultPlan` from a seed,
//! 3. run the same plan under different allocation policies
//!    (`least-loaded` is availability-aware but forgiving; `blacklist-flapping`
//!    additionally refuses to reuse sites that keep killing its jobs),
//! 4. read the reliability columns of the comparison report.
//!
//! ```bash
//! cargo run --release --example failure_injection
//! ```

use cgsim::faults::{FaultAction, SiteSelector};
use cgsim::platform::spec::MAIN_SERVER;
use cgsim::platform::{LinkSpec, SiteSpec, Tier};
use cgsim::prelude::*;

fn main() {
    // A 3-site grid: two solid workhorses and one large but flaky site.
    let platform = PlatformSpec::new("flaky-grid")
        .with_site(SiteSpec::uniform("Steady-A", Tier::Tier1, 1_200, 10.0))
        .with_site(SiteSpec::uniform("Steady-B", Tier::Tier2, 800, 9.0))
        .with_site(SiteSpec::uniform("Flapper", Tier::Tier1, 2_000, 12.0))
        .with_link(LinkSpec::new("Steady-A", MAIN_SERVER, 100.0, 10.0))
        .with_link(LinkSpec::new("Steady-B", MAIN_SERVER, 60.0, 20.0))
        .with_link(LinkSpec::new("Flapper", MAIN_SERVER, 100.0, 15.0));

    let trace = TraceGenerator::new(TraceConfig::with_jobs(2_000, 42)).generate(&platform);

    // Site 2 ("Flapper") bounces every ~90 simulated minutes and stays down
    // for ~15; its uplink also degrades now and then. The spec grammar is
    // the same one the CLI accepts via --faults.
    let fault_config = parse_fault_spec(
        "outage:site=2,mttf=90m,mttr=15m,shape=1.2;\
         degrade:link=2,factor=0.3,mttf=4h,mttr=30m;\
         horizon=2d",
    )
    .expect("spec parses");
    assert_eq!(
        fault_config.outages[0].site,
        SiteSelector::Index(2),
        "the flapping site is the one we think it is"
    );

    // Resolve the plan against this scenario: 3 sites, their WAN links as
    // the degradation targets, 2000 jobs.
    let platform_built = Platform::build(&platform).expect("platform builds");
    let topology = FaultTopology::for_platform(&platform_built, trace.len());
    let plan = FaultPlan::generate(&fault_config, &topology, 7);
    let outages = plan
        .events
        .iter()
        .filter(|e| matches!(e.action, FaultAction::SiteDown { .. }))
        .count();
    println!(
        "fault plan: {} events ({} outages of the flapping site) over 48 h\n",
        plan.len(),
        outages
    );

    // Same platform, same trace, same fault schedule — only the policy
    // changes, so the reliability columns isolate policy behaviour.
    let registry = PolicyRegistry::with_builtins();
    let report = compare_policies_faulted(
        &platform,
        &trace,
        &["least-loaded", "blacklist-flapping", "random"],
        &ExecutionConfig::default(),
        &registry,
        Some(&plan),
    )
    .expect("all policies are registered");

    println!("# Retry-policy comparison under identical site churn\n");
    println!("{}", report.to_csv());
    for row in &report.rows {
        println!(
            "{:>20}: makespan {:>6.2} h, {} interruptions, {} fault retries, failure rate {:.2}%",
            row.policy,
            row.makespan_s / 3600.0,
            row.interrupted_jobs,
            row.fault_retries,
            row.failure_rate * 100.0
        );
    }

    let best = report.best_by_makespan().expect("non-empty report");
    let calmest = report
        .rows
        .iter()
        .min_by_key(|r| r.interrupted_jobs)
        .expect("non-empty report");
    println!(
        "\nbest makespan under churn: {}; fewest interruptions: {} ({} vs {} for {})",
        best.policy,
        calmest.policy,
        calmest.interrupted_jobs,
        report.rows[0].interrupted_jobs,
        report.rows[0].policy
    );
}
