//! Simulation as a service, in-process: drives the `cgsim serve` JSONL loop
//! directly against a [`ScenarioEngine`] — the same code path the CLI wires
//! to stdin/stdout or a TCP socket — to answer a batch of what-if questions
//! about one grid ("what if we switch the allocation policy? add site
//! outages? turn on checkpointing?") without a subprocess.
//!
//! The platform and trace are loaded once into an `Arc`-shared
//! [`ScenarioBase`]; every question is a small delta. Repeating a question
//! is answered from the deterministic response cache with a byte-identical
//! response line.
//!
//! ```bash
//! cargo run --release --example what_if_server
//! ```

use cgsim::prelude::*;

fn main() {
    let platform = wlcg_platform(12, 5);
    let trace = TraceGenerator::new(TraceConfig::with_jobs(1_500, 17)).generate(&platform);
    let base = ScenarioBase::shared(platform, trace);
    let execution = ExecutionConfig::default();
    let engine = ScenarioEngine::new();

    // One batch line holding mixed what-if deltas (evaluated together over
    // the worker pool), a repeat of the baseline (cache hit), and a stats
    // probe — exactly what a client would pipe into `cgsim serve`.
    let transcript = r#"[{"id":"baseline"},{"id":"round-robin","policy":"round-robin"},{"id":"outages","faults":"outage:site=2,mttf=4h,mttr=30m;horizon=48h"},{"id":"outages+ckpt","faults":"outage:site=2,mttf=4h,mttr=30m;horizon=48h","checkpoint":{"interval_s":1800.0,"base_bytes":2000000000,"bytes_per_core":0,"target":"SiteStorage"}}]
{"id":"baseline"}
{"cmd":"stats"}
"#;

    let mut output = Vec::new();
    serve_loop(
        &engine,
        &base,
        &execution,
        std::io::Cursor::new(transcript.as_bytes()),
        &mut output,
    )
    .expect("in-memory IO cannot fail");
    let output = String::from_utf8(output).expect("responses are UTF-8");

    println!("# JSONL transcript (requests > / responses <)\n");
    for line in transcript.lines() {
        println!("> {line}");
    }
    println!();
    for line in output.lines() {
        // Response lines embed the full deterministic results; keep the
        // console readable by trimming them.
        let shown = if line.len() > 160 {
            let mut end = 160;
            while !line.is_char_boundary(end) {
                end -= 1;
            }
            format!("{}…", &line[..end])
        } else {
            line.to_string()
        };
        println!("< {shown}");
    }

    // The repeated baseline request is served from cache, byte-identically.
    let lines: Vec<&str> = output.lines().collect();
    assert_eq!(lines[0], lines[4], "cache replies are byte-identical");
    let counters = engine.cache_counters();
    println!(
        "\nengine: {} simulations for {} answers ({} cache hits)",
        engine.simulations_run(),
        lines.len() - 1,
        counters.hits
    );
}
