//! Checkpoint-interval sweep: how often should jobs checkpoint under churn?
//!
//! Checkpointing is a classic resilience trade-off. Checkpoint too rarely and
//! every fault throws away hours of completed work; checkpoint too often and
//! the periodic state writes (real fluid transfers contending with staging
//! traffic) dominate the runtime. This example runs the *same* workload under
//! the *same* deterministic fault schedule while sweeping only the checkpoint
//! interval, and prints the resulting makespan / recomputed-work curve — the
//! optimum sits strictly between "never" and "constantly".
//!
//! ```bash
//! cargo run --release --example checkpoint_restart
//! ```

use cgsim::platform::spec::MAIN_SERVER;
use cgsim::platform::{LinkSpec, SiteSpec, Tier};
use cgsim::prelude::*;
use cgsim::workload::{JobKind, JobRecord};

/// Long single-core jobs: 4 h of work each, so an interruption without a
/// checkpoint is expensive.
fn long_job_trace(count: usize) -> Trace {
    let jobs = (0..count)
        .map(|i| {
            let mut record = JobRecord::new(i as u64, JobKind::SingleCore, 1, 4.0 * 3600.0 * 10.0);
            record.input_bytes = 2_000_000_000;
            record.output_bytes = 0;
            record
        })
        .collect();
    Trace {
        jobs,
        ..Trace::default()
    }
}

fn main() {
    let platform = PlatformSpec::new("checkpointed-grid")
        .with_site(SiteSpec::uniform("Alpha", Tier::Tier1, 600, 10.0))
        .with_site(SiteSpec::uniform("Beta", Tier::Tier2, 400, 10.0))
        .with_link(LinkSpec::new("Alpha", MAIN_SERVER, 100.0, 10.0))
        .with_link(LinkSpec::new("Beta", MAIN_SERVER, 100.0, 20.0));
    let trace = long_job_trace(1_200);

    // Aggressive churn: both sites bounce every ~3 h, plus random targeted
    // kills. The plan is generated once and shared by every sweep point, so
    // the only variable is the checkpoint interval.
    let fault_config = parse_fault_spec("outage:site=all,mttf=3h,mttr=20m;kill:rate=6;horizon=4d")
        .expect("spec parses");
    let platform_built = Platform::build(&platform).expect("platform builds");
    let topology = FaultTopology::for_platform(&platform_built, trace.len());
    let plan = FaultPlan::generate(&fault_config, &topology, 7);
    println!("fault plan: {} events over 96 h\n", plan.len());

    // Interval sweep: 0 disables checkpointing (the scratch-rerun baseline).
    let intervals_min: [f64; 6] = [0.0, 5.0, 20.0, 60.0, 120.0, 240.0];
    println!(
        "{:>10} {:>12} {:>8} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "interval", "makespan_h", "intr", "ckpts", "GB", "restores", "saved_h", "lost_h"
    );

    let mut rows = Vec::new();
    for &interval_min in &intervals_min {
        let execution = ExecutionConfig {
            fault_max_retries: 50,
            checkpoint: CheckpointConfig {
                interval_s: interval_min * 60.0,
                base_bytes: 4_000_000_000, // 4 GB of state per checkpoint
                bytes_per_core: 0,
                target: CheckpointTarget::MainServer, // survives site outages
                ..CheckpointConfig::default()
            },
            ..ExecutionConfig::default()
        };
        let results = Simulation::builder()
            .platform_spec(&platform)
            .expect("platform builds")
            .trace(trace.clone())
            .policy_name("least-loaded")
            .execution(execution)
            .fault_plan(plan.clone())
            .run()
            .expect("simulation runs");
        let g = &results.grid_counters;
        let label = if interval_min == 0.0 {
            "never".to_string()
        } else {
            format!("{interval_min:.0} min")
        };
        println!(
            "{:>10} {:>12.2} {:>8} {:>8} {:>10.1} {:>10} {:>10.1} {:>10.1}",
            label,
            results.makespan_s / 3600.0,
            g.job_interruptions,
            g.checkpoints_written,
            g.checkpoint_bytes as f64 / 1e9,
            g.checkpoint_restores,
            g.work_saved_s / 3600.0,
            g.work_lost_s / 3600.0,
        );
        rows.push((label, results.makespan_s, g.work_lost_s));
    }

    let baseline = rows[0].1;
    let best = rows
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("makespans are finite"))
        .expect("non-empty sweep");
    println!(
        "\nbest interval: {} (makespan {:.2} h vs {:.2} h without checkpointing, {:.1}% better)",
        best.0,
        best.1 / 3600.0,
        baseline / 3600.0,
        (1.0 - best.1 / baseline) * 100.0
    );
    assert!(
        best.1 <= baseline,
        "a checkpointed run must not recompute more than the scratch baseline"
    );
}
