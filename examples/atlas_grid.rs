//! ATLAS computing-grid case study (paper §4.1): a 50-site WLCG-like
//! platform processing thousands of PanDA-like jobs, dispatched by the
//! historical-PanDA policy, with the event-level dataset and HTML dashboard
//! written to disk.
//!
//! ```bash
//! cargo run --release --example atlas_grid
//! ```

use cgsim::monitor::mldataset;
use cgsim::prelude::*;

fn main() {
    // The WLCG-like preset: 1 Tier-0, ~20% Tier-1, the rest Tier-2 sites with
    // 100-2000 cores each, HEPScore23-like per-core speeds and WAN links.
    let platform = wlcg_platform(50, 2024);
    let total_cores: u64 = platform.total_cores();
    println!(
        "ATLAS-like grid: {} sites, {} cores",
        platform.sites.len(),
        total_cores
    );

    // Six hours of production-like workload.
    let mut trace_cfg = TraceConfig::with_jobs(5_000, 7);
    trace_cfg.multicore_fraction = 0.45;
    let trace = TraceGenerator::new(trace_cfg).generate(&platform);

    let mut execution = ExecutionConfig::with_policy("historical-panda");
    execution.failure_probability = 0.02;
    execution.max_retries = 2;

    let results = Simulation::builder()
        .platform_spec(&platform)
        .expect("platform is valid")
        .trace(trace)
        .execution(execution)
        .run()
        .expect("simulation runs");

    println!(
        "\n=== grid-wide metrics ===\n{}",
        results.metrics.text_summary()
    );
    println!(
        "CPU utilisation over the makespan: {:.1}%",
        results.metrics.cpu_utilisation(total_cores) * 100.0
    );

    // Per-site view: the five busiest sites.
    let mut sites: Vec<_> = results.metrics.per_site.values().collect();
    sites.sort_by_key(|site| std::cmp::Reverse(site.finished_jobs));
    println!("\nbusiest sites:");
    for site in sites.iter().take(5) {
        println!(
            "  {:<16} finished {:>5}  failure rate {:>5.1}%  mean queue {:>7.1}s",
            site.site,
            site.finished_jobs,
            site.failure_rate * 100.0,
            site.queue_time.as_ref().map(|s| s.mean).unwrap_or(0.0)
        );
    }

    // Output layer: event dataset, ML dataset and dashboard.
    let out_dir = std::env::temp_dir().join("cgsim-atlas-grid");
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    results
        .to_table_store()
        .save_csv_dir(&out_dir)
        .expect("CSV export succeeds");
    let examples = mldataset::build_examples(&results.outcomes, &results.events);
    std::fs::write(out_dir.join("ml_dataset.csv"), mldataset::to_csv(&examples))
        .expect("ML dataset export succeeds");
    std::fs::write(out_dir.join("dashboard.html"), results.html_dashboard())
        .expect("dashboard export succeeds");
    println!(
        "\nevent rows: {}, ML examples: {}, outputs in {}",
        results.events.len(),
        examples.len(),
        out_dir.display()
    );
}
