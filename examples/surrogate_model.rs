//! AI-assisted performance modeling (paper §1 and future work): run a
//! simulation, export the event-level ML dataset, train the built-in
//! surrogate models on it, pick the best one by cross-validation and compare
//! surrogate inference against re-running the simulator.
//!
//! The two prediction paths compose: the trained surrogate is the *cheap*
//! path (microseconds per job, approximate), the scenario engine is the
//! *slow* path (a full simulation per novel scenario, exact — but memoised,
//! so a scenario is only ever paid for once). A what-if service would answer
//! from the surrogate when the question tolerates approximation and fall
//! back to `ScenarioEngine::evaluate` when it does not.
//!
//! ```bash
//! cargo run --release --example surrogate_model
//! ```

use cgsim::core::ScenarioSpec;
use cgsim::monitor::mldataset::build_examples;
use cgsim::prelude::*;
use cgsim::surrogate::{self, Dataset, SurrogateReport};

fn main() {
    // 1. Simulate a mid-sized grid through the scenario engine and collect
    //    the event-level dataset (the slow, exact path).
    let platform = wlcg_platform(10, 3);
    let trace = TraceGenerator::new(TraceConfig::with_jobs(2_500, 11)).generate(&platform);
    let base = ScenarioBase::shared(platform, trace);
    let engine = ScenarioEngine::new();
    let spec = ScenarioSpec::new(base, ExecutionConfig::with_policy("least-loaded"));
    let started = std::time::Instant::now();
    let results = engine.evaluate(&spec).expect("simulation runs").results;
    let sim_elapsed = started.elapsed();
    let examples = build_examples(&results.outcomes, &results.events);
    println!(
        "simulated {} jobs in {:.2?}; extracted {} training examples",
        results.outcomes.len(),
        sim_elapsed,
        examples.len()
    );

    // 2. Train every surrogate family on a train/test split and report.
    println!("\n{}", SurrogateReport::CSV_HEADER);
    for kind in SurrogateKind::ALL {
        let (_, report) = surrogate::train_and_evaluate(
            &examples,
            Target::Walltime,
            kind,
            &TrainConfig::default(),
            0.8,
            7,
        );
        println!("{}", report.to_csv_row());
    }

    // 3. Model selection by cross-validation, then fast inference.
    let (best, scores) =
        surrogate::select_best(&examples, Target::Walltime, &TrainConfig::default(), 4, 5);
    println!("\ncross-validation ranking (relative MAE, lower is better):");
    for s in &scores {
        println!(
            "  {:<6} rel_mae={:.3} r2={:.3} ({} folds)",
            s.kind.label(),
            s.mean_relative_mae,
            s.mean_r2,
            s.folds
        );
    }

    let dataset = Dataset::from_examples(&examples, Target::Walltime);
    let started = std::time::Instant::now();
    let predictions = best.predict(&dataset);
    let predict_elapsed = started.elapsed();
    println!(
        "\nbest model ({}) predicted {} job walltimes in {:.2?} — the simulation above took {:.2?}",
        best.kind().label(),
        predictions.len(),
        predict_elapsed,
        sim_elapsed
    );

    // 4. The exact path, revisited: asking the engine the same scenario again
    //    is a cache lookup, not a rerun — the slow path is only slow once.
    let started = std::time::Instant::now();
    let replay = engine.evaluate(&spec).expect("cached scenario replays");
    println!(
        "re-asking the engine for the same scenario: {:.2?} (cached: {}, {} simulations run)",
        started.elapsed(),
        replay.cached,
        engine.simulations_run()
    );
}
