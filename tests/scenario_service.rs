//! End-to-end contract of the scenario engine's response cache: serving a
//! repeated scenario from cache must be observationally identical to
//! re-simulating it — same `results.json` bytes — while actually running the
//! simulator exactly once. This is what lets `cgsim serve` answer what-if
//! queries from memory without clients being able to tell.

use cgsim::core::ScenarioSpec;
use cgsim::prelude::*;
use std::sync::Arc;

fn base_and_spec() -> (Arc<ScenarioBase>, ScenarioSpec) {
    let platform = wlcg_platform(6, 19);
    let trace = TraceGenerator::new(TraceConfig::with_jobs(300, 23)).generate(&platform);
    let base = ScenarioBase::shared(platform, trace);
    let mut execution = ExecutionConfig::with_policy("least-loaded");
    execution.failure_probability = 0.05;
    execution.max_retries = 1;
    let spec = ScenarioSpec::new(base.clone(), execution).with_faults("kill:rate=0.5;horizon=48h");
    (base, spec)
}

#[test]
fn repeated_scenario_is_served_from_cache_byte_identically() {
    let (_base, spec) = base_and_spec();
    let engine = ScenarioEngine::new();

    let first = engine.evaluate(&spec).expect("scenario runs");
    assert!(!first.cached, "first evaluation must simulate");
    assert_eq!(engine.simulations_run(), 1);
    let first_json = first.results.deterministic_json();

    let second = engine.evaluate(&spec).expect("cached scenario replays");
    assert!(second.cached, "second evaluation must come from cache");
    assert_eq!(
        second.hash, first.hash,
        "same scenario, same canonical hash"
    );
    assert_eq!(
        engine.simulations_run(),
        1,
        "the cache hit must not rerun the simulator"
    );
    let counters = engine.cache_counters();
    assert_eq!(counters.hits, 1);
    assert_eq!(counters.misses, 1);
    assert_eq!(counters.entries, 1);

    // Byte-identical results.json — and in fact the very same allocation.
    assert_eq!(second.results.deterministic_json(), first_json);
    assert!(Arc::ptr_eq(&first.results, &second.results));
}

#[test]
fn no_cache_engine_reruns_and_stays_byte_identical() {
    let (_base, spec) = base_and_spec();
    let cached_engine = ScenarioEngine::new();
    let reference = cached_engine.evaluate(&spec).expect("scenario runs");

    let engine = ScenarioEngine::new().no_cache();
    let first = engine.evaluate(&spec).expect("scenario runs");
    let second = engine.evaluate(&spec).expect("scenario reruns");
    assert!(!first.cached && !second.cached);
    assert_eq!(engine.simulations_run(), 2, "--no-cache must re-simulate");
    let counters = engine.cache_counters();
    assert_eq!(
        (counters.hits, counters.misses, counters.entries),
        (0, 0, 0)
    );

    // Determinism holds with and without the cache: all three runs agree.
    let json = reference.results.deterministic_json();
    assert_eq!(first.results.deterministic_json(), json);
    assert_eq!(second.results.deterministic_json(), json);
}

#[test]
fn distinct_deltas_are_never_conflated_by_the_cache() {
    let (base, spec) = base_and_spec();
    let engine = ScenarioEngine::new();
    let baseline = engine.evaluate(&spec).expect("scenario runs");

    let mut other_execution = spec.execution.clone();
    other_execution.seed += 1;
    let other = engine
        .evaluate(
            &ScenarioSpec::new(base, other_execution).with_faults("kill:rate=0.5;horizon=48h"),
        )
        .expect("scenario runs");
    assert_ne!(baseline.hash, other.hash, "different seed, different hash");
    assert!(!other.cached);
    assert_eq!(engine.simulations_run(), 2);
}
