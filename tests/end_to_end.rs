//! End-to-end integration tests spanning the whole workspace: JSON config in,
//! simulation through the core, monitoring/metrics/dashboard out.

use cgsim::prelude::*;

fn small_run(policy: &str, jobs: usize, seed: u64) -> SimulationResults {
    let platform = example_platform();
    let trace = TraceGenerator::new(TraceConfig::with_jobs(jobs, seed)).generate(&platform);
    Simulation::builder()
        .platform_spec(&platform)
        .unwrap()
        .trace(trace)
        .policy_name(policy)
        .execution(ExecutionConfig::default())
        .run()
        .unwrap()
}

#[test]
fn json_config_roundtrip_drives_a_simulation() {
    // The paper's input layer: JSON files for infrastructure+network and
    // execution parameters.
    let dir = std::env::temp_dir().join("cgsim-e2e-config");
    std::fs::create_dir_all(&dir).unwrap();
    let platform_path = dir.join("platform.json");
    let execution_path = dir.join("execution.json");

    let platform = wlcg_platform(6, 3);
    platform.save(&platform_path).unwrap();
    std::fs::write(
        &execution_path,
        ExecutionConfig::with_policy("round-robin").to_json(),
    )
    .unwrap();

    let config = SimulationConfig::load(&platform_path, &execution_path).unwrap();
    assert_eq!(config.platform.sites.len(), 6);
    assert_eq!(config.execution.allocation_policy, "round-robin");

    let trace = TraceGenerator::new(TraceConfig::with_jobs(150, 5)).generate(&config.platform);
    let results = Simulation::builder()
        .platform_spec(&config.platform)
        .unwrap()
        .trace(trace)
        .execution(config.execution)
        .run()
        .unwrap();
    assert_eq!(results.outcomes.len(), 150);
    assert_eq!(results.policy, "round-robin");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn full_pipeline_produces_consistent_outputs() {
    let results = small_run("least-loaded", 300, 17);

    // Every job terminal, metrics consistent with outcomes.
    assert_eq!(results.outcomes.len(), 300);
    assert_eq!(
        results.metrics.finished_jobs + results.metrics.failed_jobs,
        300
    );

    // Event dataset covers every job's terminal transition.
    let terminal_events = results
        .events
        .iter()
        .filter(|e| e.state.is_terminal())
        .count();
    assert_eq!(terminal_events, 300);

    // Monotone event ids and timestamps within the makespan.
    for pair in results.events.windows(2) {
        assert!(pair[0].event_id < pair[1].event_id);
    }
    assert!(results
        .events
        .iter()
        .all(|e| e.time_s <= results.makespan_s + 1e-6));

    // Table store export matches the in-memory data.
    let store = results.to_table_store();
    assert_eq!(store.get("jobs").unwrap().len(), 300);
    assert_eq!(store.get("events").unwrap().len(), results.events.len());

    // Dashboards render with all four sites.
    let ascii = results.ascii_dashboard();
    for site in ["CERN", "BNL", "DESY-ZN", "LRZ-LMU"] {
        assert!(ascii.contains(site), "dashboard missing {site}");
    }
}

#[test]
fn conservation_core_seconds_match_walltimes() {
    let results = small_run("least-loaded", 200, 23);
    let from_outcomes: f64 = results
        .outcomes
        .iter()
        .map(|o| o.walltime * o.cores as f64)
        .sum();
    let from_metrics: f64 = results
        .metrics
        .per_site
        .values()
        .map(|s| s.core_seconds)
        .sum();
    assert!(
        (from_outcomes - from_metrics).abs() < 1e-6 * from_outcomes.max(1.0),
        "core-second accounting mismatch: {from_outcomes} vs {from_metrics}"
    );
}

#[test]
fn policies_differ_but_both_complete_the_workload() {
    // Round-robin cycles through every site while fastest-available
    // concentrates load on the quickest one, so their placements must differ
    // on an uncongested grid — yet both complete the full workload.
    let a = small_run("fastest-available", 250, 31);
    let b = small_run("round-robin", 250, 31);
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    assert!(a.outcomes.iter().all(|o| o.final_state.is_terminal()));
    assert!(b.outcomes.iter().all(|o| o.final_state.is_terminal()));
    let differing = a
        .outcomes
        .iter()
        .zip(&b.outcomes)
        .filter(|(x, y)| x.site != y.site)
        .count();
    assert!(differing > 0, "policies produced identical placements");
    // Round-robin spreads the workload over every site of the 4-site grid.
    let sites_used: std::collections::HashSet<_> =
        b.outcomes.iter().map(|o| o.site.clone()).collect();
    assert_eq!(sites_used.len(), 4);
}

#[test]
fn ml_dataset_is_generated_from_any_run() {
    let results = small_run("least-loaded", 120, 41);
    let examples = cgsim::monitor::mldataset::build_examples(&results.outcomes, &results.events);
    assert_eq!(examples.len(), 120);
    let csv = cgsim::monitor::mldataset::to_csv(&examples);
    assert_eq!(csv.lines().count(), 121);
}

#[test]
fn baseline_and_core_run_the_same_trace() {
    let platform = example_platform();
    let trace = TraceGenerator::new(TraceConfig::with_jobs(150, 51)).generate(&platform);
    let baseline = BaselineSimulator::new().run(&platform, &trace);
    let results = Simulation::builder()
        .platform_spec(&platform)
        .unwrap()
        .trace(trace)
        .policy_name("historical-panda")
        .execution(ExecutionConfig::default())
        .run()
        .unwrap();
    assert_eq!(baseline.outcomes.len(), results.outcomes.len());
    // Both mispredict the hidden-truth walltimes when uncalibrated.
    assert!(baseline.relative_walltime_error() > 0.05);
    assert!(results.geometric_mean_walltime_error().unwrap() > 0.05);
}
