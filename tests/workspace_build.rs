//! Workspace smoke test: a small 2-site / 50-job simulation must run
//! deterministically to completion through the `cgsim` façade crate alone.

use cgsim::prelude::*;

/// A deterministic 2-site platform built purely from the façade's re-exports.
fn two_site_platform() -> PlatformSpec {
    let mut spec = PlatformSpec::new("smoke-2-sites");
    spec.sites
        .push(SiteSpec::uniform("SITE-A", Tier::Tier1, 64, 12.0));
    spec.sites
        .push(SiteSpec::uniform("SITE-B", Tier::Tier2, 32, 9.0));
    spec.network.links.push(cgsim::platform::LinkSpec::new(
        "SITE-A",
        cgsim::platform::spec::MAIN_SERVER,
        10.0,
        5.0,
    ));
    spec.network.links.push(cgsim::platform::LinkSpec::new(
        "SITE-B",
        cgsim::platform::spec::MAIN_SERVER,
        5.0,
        15.0,
    ));
    spec
}

fn run_smoke(seed: u64) -> SimulationResults {
    let platform = two_site_platform();
    platform.validate().expect("smoke platform validates");
    let trace = TraceGenerator::new(TraceConfig::with_jobs(50, seed)).generate(&platform);
    Simulation::builder()
        .platform_spec(&platform)
        .expect("platform builds")
        .trace(trace)
        .policy_name("least-loaded")
        .execution(ExecutionConfig::default())
        .run()
        .expect("simulation runs")
}

#[test]
fn two_site_fifty_job_simulation_completes() {
    let results = run_smoke(2024);
    assert_eq!(results.outcomes.len(), 50, "every job must terminate");
    assert!(results.outcomes.iter().all(|o| o.final_state.is_terminal()));
    assert_eq!(results.metrics.total_jobs, 50);
    assert_eq!(results.metrics.failed_jobs, 0);
    assert!(results.makespan_s > 0.0);
    // Both sites exist in the dashboard; at least one did work.
    assert_eq!(results.site_panels.len(), 2);
    assert!(results.site_panels.iter().any(|p| p.finished_jobs > 0));
}

#[test]
fn two_site_fifty_job_simulation_is_deterministic() {
    let a = run_smoke(2024);
    let b = run_smoke(2024);
    assert_eq!(a.engine_events, b.engine_events);
    assert!((a.makespan_s - b.makespan_s).abs() < 1e-12);
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.site, y.site);
        assert!((x.end_time - y.end_time).abs() < 1e-12);
        assert!((x.walltime - y.walltime).abs() < 1e-12);
    }
}
