//! Integration test of the Fig. 3 calibration pipeline: synthetic history →
//! per-site random-search calibration → large error reduction → validation on
//! held-out jobs.

use cgsim::prelude::*;

#[test]
fn calibration_recovers_hidden_site_speeds_and_generalises() {
    let platform = example_platform();
    let mut cfg = TraceConfig::with_jobs(600, 71);
    cfg.mean_file_bytes = 1e8;
    // Spread the hidden per-site speeds wide (as across real WLCG sites) so
    // the uncalibrated error is large, mirroring the paper's 76 % starting
    // point.
    cfg.hidden_multiplier_range = (0.35, 2.6);
    let trace = TraceGenerator::new(cfg).generate(&platform);
    let (calibration_trace, validation_trace) = trace.split(0.5);

    let calibrator = Calibrator {
        optimizer: OptimizerKind::Random,
        budget_per_site: 25,
        ..Calibrator::default()
    };
    let report = calibrator.calibrate(&platform, &calibration_trace);

    // Substantial improvement of the geometric-mean error (paper: 76% -> 17%,
    // roughly a 4.5x improvement; we require at least 2x on this small setup).
    assert!(
        report.geometric_mean_before > 0.15,
        "uncalibrated error suspiciously small"
    );
    assert!(
        report.improvement_factor() > 2.0,
        "improvement {}x (before {:.3}, after {:.3})",
        report.improvement_factor(),
        report.geometric_mean_before,
        report.geometric_mean_after
    );

    // Calibrated multipliers are close to the hidden ground truth.
    for cal in &report.sites {
        let hidden = trace.hidden_site_multipliers[&cal.site];
        assert!(
            (cal.best_multiplier - hidden).abs() / hidden < 0.5,
            "site {} multiplier {} far from hidden {}",
            cal.site,
            cal.best_multiplier,
            hidden
        );
    }

    // The calibrated platform generalises to held-out jobs.
    let mut execution = ExecutionConfig::with_policy("historical-panda");
    execution.monitoring = MonitoringConfig::disabled();
    let validation = Simulation::builder()
        .platform_spec(&report.calibrated_spec)
        .unwrap()
        .trace(validation_trace)
        .execution(execution)
        .run()
        .unwrap();
    let validation_error = validation.geometric_mean_walltime_error().unwrap();
    assert!(
        validation_error < report.geometric_mean_before,
        "validation error {validation_error} did not improve on the uncalibrated error"
    );
}

#[test]
fn all_four_optimizers_improve_over_nominal() {
    let platform = example_platform();
    let mut cfg = TraceConfig::with_jobs(300, 73);
    cfg.mean_file_bytes = 1e8;
    let trace = TraceGenerator::new(cfg).generate(&platform);

    for kind in OptimizerKind::all() {
        let calibrator = Calibrator {
            optimizer: kind,
            budget_per_site: 12,
            ..Calibrator::default()
        };
        let report = calibrator.calibrate(&platform, &trace);
        assert!(
            report.geometric_mean_after <= report.geometric_mean_before + 1e-9,
            "{kind:?} regressed: {} -> {}",
            report.geometric_mean_before,
            report.geometric_mean_after
        );
        assert_eq!(report.optimizer, kind.label());
    }
}
