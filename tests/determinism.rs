//! Reproducibility: identical configuration and seed must yield bit-identical
//! results across the whole pipeline (a prerequisite for the calibration
//! experiments, which re-evaluate the same trace hundreds of times).

use cgsim::prelude::*;

fn run(seed: u64, policy: &str) -> SimulationResults {
    let platform = wlcg_platform(8, 11);
    let trace = TraceGenerator::new(TraceConfig::with_jobs(400, seed)).generate(&platform);
    let mut execution = ExecutionConfig::with_policy(policy);
    execution.seed = seed;
    execution.failure_probability = 0.05;
    execution.max_retries = 1;
    Simulation::builder()
        .platform_spec(&platform)
        .unwrap()
        .trace(trace)
        .execution(execution)
        .run()
        .unwrap()
}

#[test]
fn identical_seeds_give_identical_runs() {
    for policy in ["least-loaded", "random", "historical-panda"] {
        let a = run(99, policy);
        let b = run(99, policy);
        assert_eq!(a.outcomes.len(), b.outcomes.len(), "{policy}");
        assert_eq!(a.engine_events, b.engine_events, "{policy}");
        assert_eq!(a.events.len(), b.events.len(), "{policy}");
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.site, y.site);
            assert_eq!(x.final_state, y.final_state);
            assert_eq!(x.walltime.to_bits(), y.walltime.to_bits());
            assert_eq!(x.queue_time.to_bits(), y.queue_time.to_bits());
        }
    }
}

#[test]
fn different_seeds_give_different_runs() {
    let a = run(1, "random");
    let b = run(2, "random");
    let same_placement = a
        .outcomes
        .iter()
        .zip(&b.outcomes)
        .filter(|(x, y)| x.site == y.site)
        .count();
    assert!(
        same_placement < a.outcomes.len(),
        "different seeds should not yield identical placements"
    );
}

#[test]
fn trace_generation_is_reproducible_across_save_and_load() {
    let platform = wlcg_platform(5, 21);
    let trace = TraceGenerator::new(TraceConfig::with_jobs(100, 77)).generate(&platform);
    let path = std::env::temp_dir().join("cgsim-determinism-trace.jsonl");
    trace.save_jsonl(&path).unwrap();
    let loaded = Trace::load_jsonl(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let run_trace = |t: Trace| {
        Simulation::builder()
            .platform_spec(&platform)
            .unwrap()
            .trace(t)
            .policy_name("least-loaded")
            .execution(ExecutionConfig::default())
            .run()
            .unwrap()
    };
    let a = run_trace(trace);
    let b = run_trace(loaded);
    assert_eq!(a.engine_events, b.engine_events);
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.walltime.to_bits(), y.walltime.to_bits());
    }
}
