//! Integration tests of the scalability claims (Fig. 4) at reduced scale:
//! the simulator's wall-clock cost must grow sub-quadratically with job count
//! and close to linearly with site count, and distributing a fixed workload
//! must beat single-site execution by a large factor.

use cgsim::des::stats::scaling_exponent;
use cgsim::platform::SiteSpec;
use cgsim::prelude::*;

fn run(platform: &PlatformSpec, jobs: usize, seed: u64) -> SimulationResults {
    let mut cfg = TraceConfig::with_jobs(jobs, seed);
    cfg.mean_file_bytes = 5e8;
    let trace = TraceGenerator::new(cfg).generate(platform);
    let mut execution = ExecutionConfig::with_policy("least-loaded");
    execution.monitoring = MonitoringConfig::disabled();
    Simulation::builder()
        .platform_spec(platform)
        .unwrap()
        .trace(trace)
        .execution(execution)
        .run()
        .unwrap()
}

#[test]
fn job_scaling_is_subquadratic() {
    let platform = cgsim::platform::presets::single_site_platform(1_000, 10.0);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &jobs in &[250usize, 500, 1_000, 2_000] {
        let results = run(&platform, jobs, 42);
        assert_eq!(results.outcomes.len(), jobs);
        xs.push(jobs as f64);
        // Engine event count is a hardware-independent proxy for runtime and
        // far less noisy than wall-clock in CI.
        ys.push(results.engine_events as f64);
    }
    let k = scaling_exponent(&xs, &ys);
    assert!(
        k < 1.6,
        "event-count scaling exponent {k} is not sub-quadratic"
    );
}

#[test]
fn multisite_scaling_is_near_linear() {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &sites in &[2usize, 5, 10, 20] {
        let platform = wlcg_platform(sites, 7);
        let results = run(&platform, sites * 100, 9);
        assert_eq!(results.outcomes.len(), sites * 100);
        xs.push(sites as f64);
        ys.push(results.engine_events as f64);
    }
    let k = scaling_exponent(&xs, &ys);
    assert!(
        (0.7..=1.4).contains(&k),
        "event-count scaling exponent {k} is not near-linear"
    );
}

#[test]
fn distributing_a_fixed_workload_beats_single_site() {
    // A bursty backlog on one 150-core site versus eight identical sites.
    // The moderate work spread keeps the makespan backlog-dominated, which is
    // the regime the abstract's 6x claim is about.
    let build = |sites: usize| {
        let mut spec = PlatformSpec::new(format!("uniform-{sites}"));
        for i in 0..sites {
            spec.sites.push(SiteSpec::uniform(
                format!("SITE-{i:02}"),
                Tier::Tier2,
                150,
                10.0,
            ));
        }
        spec
    };
    let burst_run = |platform: &PlatformSpec| {
        let mut cfg = TraceConfig::with_jobs(600, 5);
        cfg.submission_window_s = 0.0;
        cfg.mean_file_bytes = 2e8;
        cfg.work_cv = 0.4;
        let trace = TraceGenerator::new(cfg).generate(platform);
        let mut execution = ExecutionConfig::with_policy("least-loaded");
        execution.monitoring = MonitoringConfig::disabled();
        Simulation::builder()
            .platform_spec(platform)
            .unwrap()
            .trace(trace)
            .execution(execution)
            .run()
            .unwrap()
    };
    let single = burst_run(&build(1));
    let distributed = burst_run(&build(8));

    let speedup = single.metrics.makespan_s / distributed.metrics.makespan_s;
    assert!(
        speedup > 2.0,
        "distributed execution only {speedup:.2}x faster (single {:.0}s, distributed {:.0}s)",
        single.metrics.makespan_s,
        distributed.metrics.makespan_s
    );
}
